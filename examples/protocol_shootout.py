#!/usr/bin/env python
"""Broadcast scheme shootout: the Williams-taxonomy families under CAM.

The paper analyzes simple flooding and the probability-based scheme, and
names the area-based and neighbor-knowledge families as future work
(Sec. 2).  This example runs all of them in the collision-aware
simulator on identical deployments and reports the
reachability/latency/energy triple for each — the three quantities the
paper's metrics trade against each other.

Runs ~1 minute serially.
"""

import numpy as np

from repro import (
    AnalysisConfig,
    CounterBasedRelay,
    DistanceBasedRelay,
    NeighborKnowledgeRelay,
    ProbabilisticRelay,
    SimpleFlooding,
    SimulationConfig,
    optimal_probability,
    replicate,
)
from repro.utils.tables import format_table

RHO = 80
REPS = 10


def shootout(slots: int) -> str:
    cfg = AnalysisConfig(n_rings=5, rho=RHO, slots=slots)
    sim = SimulationConfig(analysis=cfg)
    p_star = optimal_probability(cfg, "reachability_at_latency", 5).p

    protocols = [
        ("simple flooding", SimpleFlooding()),
        (f"probability p={p_star:.2f}", ProbabilisticRelay(p_star)),
        ("counter-based (C=2)", CounterBasedRelay(threshold=2)),
        ("distance-based (0.6r)", DistanceBasedRelay(threshold=0.6)),
        ("neighbor-knowledge", NeighborKnowledgeRelay()),
    ]

    rows = []
    for name, policy in protocols:
        runs = replicate(policy, sim, REPS, seed=RHO)
        reach = np.mean([r.reachability for r in runs])
        reach5 = np.mean([r.reachability_after_phases(5) for r in runs])
        bcasts = np.mean([r.broadcasts_total for r in runs])
        collisions = np.mean([r.collisions for r in runs])
        rows.append((name, reach, reach5, bcasts, collisions))

    return format_table(
        ["protocol", "final reach", "reach@5ph", "broadcasts", "collision events"],
        rows,
        precision=3,
        title=f"broadcast schemes under CAM (rho={RHO}, s={slots}, {REPS} runs)",
    )


def main() -> None:
    print(shootout(slots=3))
    print()
    print(shootout(slots=8))
    print(
        "\nWith the paper's short backoff (s=3), collisions destroy most"
        "\noverheard packets, so the counter/neighbor suppression schemes"
        "\ncannot accumulate evidence before their slot and degenerate to"
        "\nflooding — only the probability scheme economizes.  A longer"
        "\nassessment window (s=8) lets them work as designed, at the cost"
        "\nof latency.  The tuned probability scheme stays the cheapest"
        "\nbut trades away eventual reachability — exactly the trade-space"
        "\nthe paper's four metrics formalize."
    )


if __name__ == "__main__":
    main()
