#!/usr/bin/env python
"""Quickstart: tune a broadcast probability analytically, verify by simulation.

The workflow of the paper's Fig. 1(b), end to end:

1. describe the deployment (the abstract network model),
2. ask the analytical framework for the optimal broadcast probability
   under a latency constraint,
3. validate the choice with the slot-level CAM simulator.

Runs in a few seconds.  No arguments.
"""

import numpy as np

import repro

LATENCY_BUDGET = 5  # time phases, as in the paper's Fig. 4


def main() -> None:
    # 1. The network model: P = 5 rings, ~100 neighbors per node, s = 3.
    cfg = repro.AnalysisConfig(n_rings=5, rho=100, slots=3)
    print(f"network: {cfg.n_nodes:.0f} nodes, rho = {cfg.rho:.0f}, "
          f"field radius = {cfg.field_radius:.0f} r")

    # 2. Optimize p for reachability within the latency budget (Fig. 4b).
    best = repro.optimal_probability(
        cfg, "reachability_at_latency", LATENCY_BUDGET
    )
    print(f"analysis: optimal p = {best.p:.2f}, predicted reachability "
          f"within {LATENCY_BUDGET} phases = {best.value:.3f}")

    flooding = repro.flooding_trace(cfg).reachability_after(LATENCY_BUDGET)
    print(f"analysis: simple flooding (p = 1) would reach {flooding:.3f}")

    # 3. Validate in the collision-aware simulator (30 runs, like Sec. 5).
    sim_cfg = repro.SimulationConfig(analysis=cfg)
    runs = repro.simulate_pb(sim_cfg, best.p, replications=30, seed=2005)
    agg = repro.aggregate_metric(
        runs,
        lambda r: r.reachability_after_phases(LATENCY_BUDGET),
        name="simulated reachability",
    )
    print(f"simulation: {agg}")

    flood_runs = repro.replicate(
        repro.SimpleFlooding(), sim_cfg, 30, seed=2005
    )
    flood_agg = repro.aggregate_metric(
        flood_runs, lambda r: r.reachability_after_phases(LATENCY_BUDGET)
    )
    print(f"simulation: flooding reaches {flood_agg.mean:.3f} "
          f"with {np.mean([r.broadcasts_total for r in flood_runs]):.0f} broadcasts "
          f"(tuned p uses {np.mean([r.broadcasts_total for r in runs]):.0f})")


if __name__ == "__main__":
    main()
