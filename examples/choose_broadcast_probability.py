#!/usr/bin/env python
"""Deployment planner: recommend a broadcast probability for your network.

Scenario from the paper's introduction: a base station at the center of
a sensor field injects user queries, which must be disseminated to the
whole network by probability-based broadcast.  Given the deployment
density and the application's constraint (deadline, reachability floor,
or energy budget), this planner prints the recommended ``p`` under each
of the paper's four performance metrics (Sec. 4.1).

Usage::

    python choose_broadcast_probability.py [rho]

``rho`` is the expected neighbors per node (default 80).
"""

import sys

from repro import AnalysisConfig, InfeasibleConstraintError, optimal_probability
from repro.utils.tables import format_table

SCENARIOS = [
    # (metric, constraint, description of the application requirement)
    ("reachability_at_latency", 5.0, "deliver to as many as possible in 5 phases"),
    ("latency_at_reachability", 0.72, "reach 72% of the field as fast as possible"),
    ("energy_at_reachability", 0.72, "reach 72% with the fewest broadcasts"),
    ("reachability_at_energy", 35.0, "make 35 broadcasts count the most"),
]


def plan(rho: float) -> str:
    cfg = AnalysisConfig(n_rings=5, rho=rho, slots=3)
    rows = []
    for metric, constraint, story in SCENARIOS:
        try:
            res = optimal_probability(cfg, metric, constraint, refine=True)
            rows.append((story, res.p, res.value))
        except InfeasibleConstraintError:
            rows.append((story, None, None))
    return format_table(
        ["application requirement", "recommended p", "predicted value"],
        rows,
        title=f"broadcast planner: rho = {rho:.0f} "
        f"({cfg.n_nodes:.0f} nodes, s = {cfg.slots})",
    )


def main() -> None:
    rho = float(sys.argv[1]) if len(sys.argv) > 1 else 80.0
    print(plan(rho))
    print(
        "\nNote: the latency- and energy-driven optima differ by an order"
        "\nof magnitude (paper Sec. 4.2) — pick the metric your application"
        "\nactually cares about before tuning p."
    )


if __name__ == "__main__":
    main()
