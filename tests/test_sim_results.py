"""RunResult / AggregateResult metric math on synthetic series."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError
from repro.sim.results import AggregateResult, RunResult, aggregate_metric


def make_run(new_by_slot, bcasts_by_slot, n_field=100, slots=3):
    cfg = AnalysisConfig(n_rings=2, rho=n_field / 4, slots=slots)
    n_slots = len(new_by_slot)
    n_phases = -(-n_slots // slots)
    new_pr = np.zeros((n_phases, 2))
    b_p = np.zeros(n_phases)
    for i, v in enumerate(new_by_slot):
        new_pr[i // slots, 0] += v
    for i, v in enumerate(bcasts_by_slot):
        b_p[i // slots] += v
    trace = BroadcastTrace(cfg, 0.5, new_pr, b_p)
    return RunResult(
        trace=trace,
        new_informed_by_slot=np.array(new_by_slot),
        broadcasts_by_slot=np.array(bcasts_by_slot),
        n_field_nodes=n_field,
    )


@pytest.fixture
def run():
    # Slots: informs 10, 20, 10, 20, 0, 0; broadcasts 1, 5, 5, 10, 2, 0.
    return make_run([10, 20, 10, 20, 0, 0], [1, 5, 5, 10, 2, 0])


class TestRunResultMetrics:
    def test_reachability(self, run):
        assert run.reachability == pytest.approx(0.6)

    def test_broadcasts_total(self, run):
        assert run.broadcasts_total == 23

    def test_reachability_after_phases(self, run):
        assert run.reachability_after_phases(1) == pytest.approx(0.4)  # 3 slots
        assert run.reachability_after_phases(2) == pytest.approx(0.6)

    def test_reachability_after_fractional_phase(self, run):
        # 1/3 phase = 1 slot → 10 informed.
        assert run.reachability_after_phases(1 / 3) == pytest.approx(0.1)

    def test_latency_phases_to(self, run):
        # 30% reached at slot 1 (cumsum 10,30) → (1+1)/3 phases.
        assert run.latency_phases_to(0.3) == pytest.approx(2 / 3)

    def test_latency_infeasible(self, run):
        with pytest.raises(InfeasibleConstraintError):
            run.latency_phases_to(0.9)

    def test_broadcasts_to(self, run):
        # 0.3 reach at slot 1 → broadcasts 1 + 5.
        assert run.broadcasts_to(0.3) == 6

    def test_reachability_within_budget(self, run):
        # Budget 11: cum broadcasts 1,6,11,21,... last slot within = 2
        # → cum reach 40/100.
        assert run.reachability_within_budget(11) == pytest.approx(0.4)

    def test_budget_larger_than_all(self, run):
        assert run.reachability_within_budget(1000) == pytest.approx(0.6)

    def test_budget_smaller_than_first_slot(self, run):
        assert run.reachability_within_budget(0.5) == 0.0


class TestAggregateResult:
    def test_moments(self):
        agg = AggregateResult("x", np.array([1.0, 2.0, 3.0]))
        assert agg.mean == 2.0
        assert agg.std == pytest.approx(1.0)
        assert agg.n == 3

    def test_nan_excluded(self):
        agg = AggregateResult("x", np.array([1.0, np.nan, 3.0]))
        assert agg.mean == 2.0
        assert agg.n == 2 and agg.n_failed == 1

    def test_ci_contains_mean(self):
        agg = AggregateResult("x", np.arange(30, dtype=float))
        lo, hi = agg.ci
        assert lo < agg.mean < hi

    def test_ci_width_shrinks_with_n(self):
        small = AggregateResult("x", np.tile([1.0, 2.0], 5))
        large = AggregateResult("x", np.tile([1.0, 2.0], 50))
        assert large.half_width < small.half_width

    def test_degenerate_single_sample(self):
        agg = AggregateResult("x", np.array([5.0]))
        assert agg.mean == 5.0
        assert np.isnan(agg.std)

    def test_str(self):
        text = str(AggregateResult("reach", np.array([0.5, 0.7])))
        assert "reach" in text and "n=2" in text


class TestAggregateMetric:
    def test_applies_metric(self, run):
        agg = aggregate_metric([run, run], lambda r: r.reachability, name="r")
        assert agg.mean == pytest.approx(0.6)
        assert agg.n == 2

    def test_infeasible_becomes_nan(self, run):
        agg = aggregate_metric([run], lambda r: r.latency_phases_to(0.9))
        assert agg.n_failed == 1
