"""Figure persistence: JSON round-trips and CSV export."""

import json

import numpy as np
import pytest

from repro.experiments.io import (
    figure_from_json,
    figure_to_csv,
    figure_to_json,
    load_figure,
    load_figures,
    save_figure,
    save_figures,
)
from repro.experiments.report import FigureResult


@pytest.fixture
def result():
    return FigureResult(
        figure="fig4b",
        title="Optimal probability",
        x_name="rho",
        x_values=np.array([20.0, 60.0, 140.0]),
        series={
            "optimal_p": np.array([0.64, 0.21, 0.09]),
            "latency": np.array([4.6, np.nan, 5.0]),
        },
        notes={"plateau": 0.8356, "claim": "decays with density"},
    )


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, result):
        back = figure_from_json(figure_to_json(result))
        assert back.figure == result.figure
        assert back.title == result.title
        assert back.x_name == result.x_name
        np.testing.assert_allclose(back.x_values, result.x_values)
        assert set(back.series) == set(result.series)
        np.testing.assert_allclose(
            back.series_array("optimal_p"), result.series_array("optimal_p")
        )

    def test_nan_survives_as_null(self, result):
        text = figure_to_json(result)
        assert "NaN" not in text  # strict JSON
        back = figure_from_json(text)
        assert np.isnan(back.series_array("latency")[1])

    def test_notes_preserved(self, result):
        back = figure_from_json(figure_to_json(result))
        assert back.notes["claim"] == "decays with density"
        assert back.notes["plateau"] == pytest.approx(0.8356)

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="schema"):
            figure_from_json(json.dumps({"schema": "other/9"}))

    def test_output_is_valid_json(self, result):
        json.loads(figure_to_json(result))


class TestFiles:
    def test_save_and_load(self, result, tmp_path):
        path = save_figure(result, tmp_path / "fig.json")
        back = load_figure(path)
        assert back.figure == "fig4b"

    def test_batch_roundtrip(self, result, tmp_path):
        other = FigureResult(
            figure="fig12",
            title="ratio",
            x_name="rho",
            x_values=[20.0],
            series={"ratio": [10.2]},
        )
        save_figures([result, other], tmp_path)
        loaded = load_figures(tmp_path)
        assert set(loaded) == {"fig4b", "fig12"}

    def test_load_empty_directory(self, tmp_path):
        assert load_figures(tmp_path) == {}


class TestCsv:
    def test_header_and_rows(self, result):
        csv_text = figure_to_csv(result)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "rho,optimal_p,latency"
        assert len(lines) == 4

    def test_nan_is_empty_cell(self, result):
        csv_text = figure_to_csv(result)
        assert ",0.21," in csv_text
        row = csv_text.strip().splitlines()[2]
        assert row.endswith(",")  # NaN latency at rho=60

    def test_real_figure_exports(self, tiny_scale):
        from repro.experiments.figures import generate_figure

        res = generate_figure("fig4b", tiny_scale)
        csv_text = figure_to_csv(res)
        assert csv_text.splitlines()[0].startswith("rho,")
