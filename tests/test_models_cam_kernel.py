"""Vectorized CAM slot kernel vs the loop-based reference.

`CollisionAwareChannel._counts_and_senders` gathers every transmitter's
CSR neighbor slice in one fancy index and accumulates with bincount;
`_counts_and_senders_reference` is the per-transmitter loop it replaced.
These tests pin the two to *exact* equality on randomized topologies and
transmitter sets, including the degenerate shapes the gather has to get
right (empty slices, contiguous flooding, unsorted input), and check the
full `resolve_slot` Delivery through both CSR graphs.
"""

import numpy as np
import pytest

from repro.models.cam import CollisionAwareChannel
from repro.network.deployment import DiskDeployment
from repro.network.topology import Topology


def random_topology(rng, n, radius=0.35, carrier=None):
    positions = rng.uniform(0.0, 1.0, size=(n, 2))
    return Topology(positions, radius, carrier_radius=carrier)


def assert_kernels_agree(channel, tx, indptr, indices):
    fast = channel._counts_and_senders(tx, indptr, indices)
    slow = channel._counts_and_senders_reference(tx, indptr, indices)
    np.testing.assert_array_equal(fast[0], slow[0])
    np.testing.assert_array_equal(fast[1], slow[1])
    assert fast[0].dtype == slow[0].dtype
    assert fast[1].dtype == slow[1].dtype


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_transmitter_sets(self, seed):
        rng = np.random.default_rng(seed)
        topo = random_topology(rng, int(rng.integers(2, 80)))
        channel = CollisionAwareChannel(topo)
        for _ in range(6):
            k = int(rng.integers(0, topo.n_nodes + 1))
            tx = rng.choice(topo.n_nodes, size=k, replace=False)
            assert_kernels_agree(
                channel, np.sort(tx), topo.indptr, topo.indices
            )

    def test_flooding_contiguous_fast_path(self, rng):
        """All nodes transmitting: slices are back-to-back in the CSR."""
        topo = random_topology(rng, 60)
        channel = CollisionAwareChannel(topo)
        tx = np.arange(topo.n_nodes, dtype=np.intp)
        assert_kernels_agree(channel, tx, topo.indptr, topo.indices)

    def test_empty_transmitter_set(self, rng):
        topo = random_topology(rng, 20)
        channel = CollisionAwareChannel(topo)
        tx = np.zeros(0, dtype=np.intp)
        assert_kernels_agree(channel, tx, topo.indptr, topo.indices)

    def test_zero_degree_transmitters(self, rng):
        """Isolated nodes have empty CSR slices the gather must skip."""
        positions = np.vstack(
            [rng.uniform(0.0, 0.2, size=(8, 2)), [[5.0, 5.0]], [[9.0, 9.0]]]
        )
        topo = Topology(positions, 0.5)
        channel = CollisionAwareChannel(topo)
        # Mix isolated and connected transmitters, isolated first and last.
        for tx in ([8], [8, 9], [0, 8, 9], [8, 0, 1, 9], list(range(10))):
            assert_kernels_agree(
                channel,
                np.asarray(tx, dtype=np.intp),
                topo.indptr,
                topo.indices,
            )

    def test_carrier_csr_branch(self, rng):
        topo = random_topology(rng, 50, radius=0.25, carrier=0.5)
        channel = CollisionAwareChannel(topo, carrier_sense=True)
        c_indptr, c_indices = topo.carrier_csr()
        for _ in range(5):
            k = int(rng.integers(1, 25))
            tx = np.sort(rng.choice(topo.n_nodes, size=k, replace=False))
            assert_kernels_agree(channel, tx, c_indptr, c_indices)


class TestResolveSlotDelivery:
    @pytest.mark.parametrize("carrier_sense", [False, True])
    def test_delivery_matches_reference_kernel(self, rng, carrier_sense):
        deployment = DiskDeployment.sample(rho=25.0, n_rings=3, rng=rng)
        topo = deployment.topology(
            carrier_radius=2.0 * deployment.radius if carrier_sense else None
        )
        channel = CollisionAwareChannel(topo, carrier_sense=carrier_sense)
        reference = CollisionAwareChannel(topo, carrier_sense=carrier_sense)
        reference._counts_and_senders = reference._counts_and_senders_reference
        for _ in range(5):
            k = int(rng.integers(0, topo.n_nodes // 2))
            tx = rng.choice(topo.n_nodes, size=k, replace=False)
            fast = channel.resolve_slot(tx)
            slow = reference.resolve_slot(tx)
            np.testing.assert_array_equal(fast.receivers, slow.receivers)
            np.testing.assert_array_equal(fast.senders, slow.senders)
            np.testing.assert_array_equal(fast.collided, slow.collided)
