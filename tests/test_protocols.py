"""Relay policies: decision semantics, determinism, engine contract."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.topology import Topology
from repro.protocols.area import DistanceBasedRelay
from repro.protocols.base import EngineContext
from repro.protocols.counter import CounterBasedRelay
from repro.protocols.neighbor import NeighborKnowledgeRelay
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding


@pytest.fixture
def ctx():
    # A small cross of nodes around the origin.
    pos = np.array(
        [[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.3, 0.0], [2.0, 0.0]]
    )
    topo = Topology(pos, radius=1.1)
    return EngineContext(topology=topo, slots_per_phase=3, radius=1.1)


ALL_POLICIES = [
    ProbabilisticRelay(0.5),
    SimpleFlooding(),
    CounterBasedRelay(threshold=2),
    DistanceBasedRelay(0.5),
    NeighborKnowledgeRelay(),
]


class TestContract:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_schedule_shapes(self, policy, ctx, rng):
        nodes = np.array([1, 3, 4])
        senders = np.array([0, 0, 0])
        will, slots = policy.schedule(nodes, senders, rng, ctx)
        assert np.asarray(will).shape == (3,)
        assert np.asarray(slots).shape == (3,)
        assert np.all((slots >= 0) & (slots < 3))

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_deterministic_under_seed(self, policy, ctx):
        nodes = np.array([1, 3, 4])
        senders = np.array([0, 0, 0])
        a = policy.schedule(nodes, senders, np.random.default_rng(9), ctx)
        b = policy.schedule(nodes, senders, np.random.default_rng(9), ctx)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_default_confirm_keeps_all(self, policy, ctx, rng):
        if isinstance(policy, CounterBasedRelay):
            pytest.skip("counter policy overrides confirm")
        keep = policy.confirm(np.array([1, 2]), np.array([5, 0]), rng, ctx)
        assert list(keep) == [True, True]

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_empty_batch(self, policy, ctx, rng):
        will, slots = policy.schedule(
            np.array([], dtype=int), np.array([], dtype=int), rng, ctx
        )
        assert len(will) == 0 and len(slots) == 0


class TestProbabilistic:
    def test_p_zero_never_relays(self, ctx, rng):
        will, _ = ProbabilisticRelay(0.0).schedule(
            np.arange(4), np.zeros(4, int), rng, ctx
        )
        assert not will.any()

    def test_p_one_always_relays(self, ctx, rng):
        will, _ = ProbabilisticRelay(1.0).schedule(
            np.arange(4), np.zeros(4, int), rng, ctx
        )
        assert will.all()

    def test_empirical_rate(self, ctx):
        rng = np.random.default_rng(0)
        pol = ProbabilisticRelay(0.3)
        wills = [
            pol.schedule(np.arange(100), np.zeros(100, int), rng, ctx)[0].mean()
            for _ in range(30)
        ]
        assert np.mean(wills) == pytest.approx(0.3, abs=0.03)

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticRelay(1.5)

    def test_flooding_is_p_one(self):
        assert SimpleFlooding().p == 1.0

    def test_slots_uniform(self, ctx):
        rng = np.random.default_rng(1)
        _, slots = ProbabilisticRelay(1.0).schedule(
            np.arange(3000), np.zeros(3000, int), rng, ctx
        )
        counts = np.bincount(slots, minlength=3)
        assert np.all(counts > 800)


class TestCounterBased:
    def test_cancels_at_threshold(self, ctx, rng):
        pol = CounterBasedRelay(threshold=2)
        keep = pol.confirm(np.array([1, 2, 3]), np.array([0, 1, 2]), rng, ctx)
        assert list(keep) == [True, True, False]

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            CounterBasedRelay(threshold=0)

    def test_schedules_like_pb(self, ctx, rng):
        will, _ = CounterBasedRelay(threshold=2, p=1.0).schedule(
            np.arange(5), np.zeros(5, int), rng, ctx
        )
        assert will.all()


class TestDistanceBased:
    def test_near_receivers_suppressed(self, ctx, rng):
        # Node 4 is 0.3 from sender 0 (< 0.5 * r); node 1 is 1.0 away.
        pol = DistanceBasedRelay(threshold=0.5)
        will, _ = pol.schedule(np.array([4, 1]), np.array([0, 0]), rng, ctx)
        assert list(will) == [False, True]

    def test_unknown_sender_fails_open(self, ctx, rng):
        pol = DistanceBasedRelay(threshold=0.9)
        will, _ = pol.schedule(np.array([4]), np.array([-1]), rng, ctx)
        assert will[0]

    def test_threshold_zero_always_relays(self, ctx, rng):
        pol = DistanceBasedRelay(threshold=0.0)
        will, _ = pol.schedule(np.array([4, 1]), np.array([0, 0]), rng, ctx)
        assert will.all()

    def test_extra_thinning(self, ctx):
        rng = np.random.default_rng(3)
        pol = DistanceBasedRelay(threshold=0.0, p=0.0)
        will, _ = pol.schedule(np.array([1]), np.array([0]), rng, ctx)
        assert not will.any()


class TestNeighborKnowledge:
    def test_fully_covered_receiver_silent(self, ctx, rng):
        # Node 4 (0.3, 0) neighbors: {0, 1, 2, 3}? distances: to 0: .3,
        # 1: .7, 2: 1.3 (out), 3: ~1.04 (in, radius 1.1).  Sender 0 covers
        # {1, 2, 3, 4}. Node 4's neighbors minus 0's coverage minus 0 = {}?
        pol = NeighborKnowledgeRelay()
        will, _ = pol.schedule(np.array([4]), np.array([0]), rng, ctx)
        assert not will[0]

    def test_frontier_receiver_relays(self, ctx, rng):
        # Node 1 (1, 0) has neighbor 5 (2, 0) which sender 0 cannot reach.
        pol = NeighborKnowledgeRelay()
        will, _ = pol.schedule(np.array([1]), np.array([0]), rng, ctx)
        assert will[0]

    def test_unknown_sender_fails_open(self, ctx, rng):
        pol = NeighborKnowledgeRelay()
        will, _ = pol.schedule(np.array([4]), np.array([-1]), rng, ctx)
        assert will[0]

    def test_mixed_batch(self, ctx, rng):
        pol = NeighborKnowledgeRelay()
        will, _ = pol.schedule(np.array([4, 1]), np.array([0, 0]), rng, ctx)
        assert list(will) == [False, True]
