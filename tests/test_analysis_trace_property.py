"""Property tests on BroadcastTrace metric consistency (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError


@st.composite
def traces(draw):
    """Random valid traces: nonnegative arrivals bounded by the population."""
    n_rings = draw(st.integers(min_value=1, max_value=4))
    phases = draw(st.integers(min_value=1, max_value=8))
    rho = draw(st.floats(min_value=5.0, max_value=50.0))
    cfg = AnalysisConfig(n_rings=n_rings, rho=rho, quad_nodes=8)
    total = cfg.n_nodes
    raw = draw(
        st.lists(
            st.lists(
                st.one_of(
                    st.just(0.0), st.floats(min_value=0.01, max_value=20.0)
                ),
                min_size=n_rings,
                max_size=n_rings,
            ),
            min_size=phases,
            max_size=phases,
        )
    )
    new = np.array(raw)
    # Scale down if the draw exceeds the population.
    s = new.sum()
    if s > total:
        new *= 0.9 * total / s
    # Broadcast increments are either exactly zero or macroscopic:
    # subnormal increments (1e-14 on a base of 2) are below the float
    # cancellation floor of any interpolation scheme and not physical.
    bcast = draw(
        st.lists(
            st.one_of(
                st.just(0.0), st.floats(min_value=0.01, max_value=50.0)
            ),
            min_size=phases,
            max_size=phases,
        )
    )
    return BroadcastTrace(
        config=cfg, p=0.5, new_by_phase_ring=new, broadcasts_by_phase=np.array(bcast)
    )


class TestTraceProperties:
    @given(trace=traces())
    @settings(max_examples=80, deadline=None)
    def test_reachability_monotone_nondecreasing(self, trace):
        ts = np.linspace(0, trace.phases + 1, 17)
        vals = [trace.reachability_after(t) for t in ts]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:], strict=False))

    @given(trace=traces())
    @settings(max_examples=80, deadline=None)
    def test_reachability_bounds(self, trace):
        for t in (0.5, 1.0, trace.phases, 100.0):
            r = trace.reachability_after(t)
            assert -1e-12 <= r <= 1.0 + 1e-12

    @given(trace=traces(), target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=80, deadline=None)
    def test_latency_roundtrip(self, trace, target):
        try:
            t = trace.latency_to(target)
        except InfeasibleConstraintError:
            assume(False)
        assert trace.reachability_after(t) == pytest.approx(target, abs=1e-9)
        assert 0.0 <= t <= trace.phases

    @given(trace=traces(), target=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=80, deadline=None)
    def test_energy_duality(self, trace, target):
        try:
            budget = trace.broadcasts_to(target)
        except InfeasibleConstraintError:
            assume(False)
        assume(budget > 0)
        reach = trace.reachability_within_energy(budget)
        # Spending exactly the budget needed for `target` yields >= target
        # (equality unless the crossing phase has zero broadcasts).
        assert reach >= target - 1e-9

    @given(trace=traces())
    @settings(max_examples=60, deadline=None)
    def test_broadcasts_at_monotone(self, trace):
        ts = np.linspace(0, trace.phases + 1, 13)
        vals = [trace.broadcasts_at(t) for t in ts]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:], strict=False))

    @given(trace=traces())
    @settings(max_examples=60, deadline=None)
    def test_truncation_consistency(self, trace):
        assume(trace.phases >= 2)
        t1 = trace.truncated(trace.phases - 1)
        # A truncated trace agrees on every earlier-phase quantity.
        assert t1.reachability_after(1) == pytest.approx(
            trace.reachability_after(1)
        )
        assert t1.broadcasts_at(1) == pytest.approx(trace.broadcasts_at(1))
