"""Cross-engine event agreement.

Under a deterministic relay policy and a shared deployment, the
vectorized slot-stepper and the continuous-time DES engine must emit
*identical* slot-level event streams: same active slots, same ``n_tx``,
``n_rx`` and ``n_collisions`` per slot, same set of first receptions,
and the same per-phase summaries.  This pins the two implementations to
one semantics far more tightly than the statistical integration tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.network.deployment import DiskDeployment
from repro.obs import capture
from repro.obs.events import NodeInformed, PhaseComplete, SlotResolved
from repro.protocols.base import RelayPolicy
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast


class DeterministicRelay(RelayPolicy):
    """Always relay, in a slot derived from the node id.

    Removing the coin flips makes both engines' RNG consumption
    identical (only the source's opening-slot draw remains), so their
    executions must coincide event for event.
    """

    name = "deterministic"

    def schedule(self, new_nodes, senders, rng, ctx):
        nodes = np.asarray(new_nodes)
        return np.ones(len(nodes), dtype=bool), (nodes * 7 + 3) % ctx.slots_per_phase


def _run_both(carrier_sense: bool, seed: int):
    config = SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=6.0, slots=8),
        channel="cam",
        carrier_sense=carrier_sense,
        max_phases=12,
    )
    deployment = DiskDeployment.sample(
        rho=config.rho,
        n_rings=config.n_rings,
        radius=config.radius,
        rng=np.random.default_rng(1000 + seed),
        population=config.population,
    )
    policy = DeterministicRelay()
    with capture() as vec_buf:
        vec = run_broadcast(policy, config, seed, deployment=deployment)
    with capture() as des_buf:
        des = DesBroadcastSimulation(
            policy, config, seed, deployment=deployment
        ).run()
    return vec, vec_buf, des, des_buf


@pytest.mark.parametrize("carrier_sense", [False, True], ids=["plain", "carrier"])
@pytest.mark.parametrize("seed", [7, 11, 1234])
def test_slot_streams_match_exactly(carrier_sense, seed):
    vec, vec_buf, des, des_buf = _run_both(carrier_sense, seed)

    vec_slots = vec_buf.of_type(SlotResolved)
    des_slots = des_buf.of_type(SlotResolved)
    assert vec_slots, "vector engine emitted no slots"
    assert vec_slots == des_slots

    # First receptions agree as sets of (slot, node, sender); the
    # within-slot emission order is engine-specific.
    vec_informed = {
        (e.slot, e.node, e.sender) for e in vec_buf.of_type(NodeInformed)
    }
    des_informed = {
        (e.slot, e.node, e.sender) for e in des_buf.of_type(NodeInformed)
    }
    assert vec_informed == des_informed

    assert vec_buf.of_type(PhaseComplete) == des_buf.of_type(PhaseComplete)


@pytest.mark.parametrize("carrier_sense", [False, True], ids=["plain", "carrier"])
def test_results_match_with_streams(carrier_sense):
    vec, _, des, _ = _run_both(carrier_sense, 7)
    assert vec.reachability == des.reachability
    assert vec.total_tx == des.total_tx
    assert vec.total_rx == des.total_rx
    k = min(len(vec.new_informed_by_slot), len(des.new_informed_by_slot))
    assert np.array_equal(
        vec.new_informed_by_slot[:k], des.new_informed_by_slot[:k]
    )
    assert int(vec.new_informed_by_slot[k:].sum()) == 0
    assert int(des.new_informed_by_slot[k:].sum()) == 0


def test_des_attributes_boundary_receptions_to_sending_phase():
    """A reception completing exactly on a phase boundary belongs to the
    phase its transmission started in (the aligned-slot semantics); the
    relay it triggers must fire in the *next* phase, not one later."""
    _, vec_buf, _, des_buf = _run_both(False, 1234)
    vec_by_phase = {e.phase: e.n_new for e in vec_buf.of_type(PhaseComplete)}
    des_by_phase = {e.phase: e.n_new for e in des_buf.of_type(PhaseComplete)}
    assert vec_by_phase == des_by_phase
