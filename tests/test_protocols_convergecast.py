"""Convergecast data gathering: tree, custody transfer, contention control."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.network.deployment import DiskDeployment
from repro.protocols.convergecast import run_convergecast
from repro.sim.config import SimulationConfig
from repro.errors import ConfigurationError


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=12))


def line_deployment(n=5, spacing=0.9):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return DiskDeployment(positions=pos, radius=1.0, n_rings=5)


class TestLineGathering:
    def test_all_reports_delivered(self, cfg):
        res = run_convergecast(cfg, 0, deployment=line_deployment())
        assert res.generated == 4
        assert res.delivered == 4
        assert res.delivery_ratio == 1.0

    def test_transmission_count_at_least_hop_sum(self, cfg):
        # Report from hop-depth d needs >= d transmissions.
        res = run_convergecast(cfg, 0, deployment=line_deployment())
        assert res.transmissions >= 1 + 2 + 3 + 4

    def test_tree_depth(self, cfg):
        res = run_convergecast(cfg, 0, deployment=line_deployment())
        assert res.tree_depth == 4

    def test_parents_form_tree_toward_source(self, cfg):
        res = run_convergecast(cfg, 0, deployment=line_deployment())
        assert list(res.parents) == [-1, 0, 1, 2, 3]


class TestRandomDeployments:
    def test_full_delivery_with_auto_thinning(self, cfg):
        res = run_convergecast(cfg, 5)
        assert res.delivery_ratio == 1.0

    def test_deterministic(self, cfg):
        a = run_convergecast(cfg, 9)
        b = run_convergecast(cfg, 9)
        assert a.transmissions == b.transmissions
        assert a.phases == b.phases

    def test_saturated_contention_livelocks(self):
        """q = 1 is the unicast broadcast storm: above ~s slots' worth of
        contenders per neighborhood, almost every report strands."""
        dense = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))
        res = run_convergecast(
            dense, 5, tx_probability=1.0, max_phases=300, max_attempts_per_hop=60
        )
        assert res.delivery_ratio < 0.3

    def test_thinning_beats_saturation_in_cost_per_report(self):
        dense = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))
        auto = run_convergecast(dense, 5)
        sat = run_convergecast(
            dense, 5, tx_probability=1.0, max_phases=300, max_attempts_per_hop=60
        )
        assert (auto.transmissions / max(auto.delivered, 1)) < (
            sat.transmissions / max(sat.delivered, 1)
        )

    def test_disconnected_nodes_generate_nothing(self, cfg):
        pos = np.array([[0.0, 0.0], [0.9, 0.0], [2.8, 0.0]])  # node 2 isolated
        dep = DiskDeployment(positions=pos, radius=1.0, n_rings=3)
        res = run_convergecast(cfg, 0, deployment=dep)
        assert res.generated == 1
        assert res.delivered == 1

    def test_invalid_tx_probability(self, cfg):
        with pytest.raises(ConfigurationError):
            run_convergecast(cfg, 0, tx_probability=0.0)

    def test_carrier_sense_costs_more(self):
        acfg = AnalysisConfig(n_rings=3, rho=12)
        base = run_convergecast(SimulationConfig(analysis=acfg), 7)
        cs = run_convergecast(
            SimulationConfig(analysis=acfg, carrier_sense=True), 7
        )
        # Same delivery contract, more contention to fight through.
        assert cs.delivery_ratio == 1.0
        assert cs.transmissions >= base.transmissions
