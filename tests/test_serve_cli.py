"""repro-serve CLI, workload files, and the wire protocol."""

import io
import json

import pytest

from repro.errors import ConfigurationError, ServeError
from repro.serve import (
    QueryService,
    make_workload,
    load_workload,
    parse_request,
    request_key,
    save_workload,
)
from repro.serve.cli import main as serve_cli
from repro.serve.workload import _percentile
from repro.store import ShardedBackend


class TestParseRequest:
    def test_scalar_p_becomes_ps(self):
        req = parse_request({"kind": "bound", "rho": 20.0, "p": 0.5, "seed": 1})
        assert req.ps == (0.5,)

    def test_objective_defaults_to_canonical_grid(self):
        req = parse_request({"kind": "objective", "rho": 20.0, "seed": 1})
        assert len(req.ps) == 9

    def test_json_string_accepted(self):
        req = parse_request(
            json.dumps({"kind": "bound", "rho": 20.0, "p": 0.5, "seed": 1})
        )
        assert req.rho == 20.0

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError, match="unknown request field"):
            parse_request(
                {"kind": "bound", "rho": 20.0, "p": 0.5, "seed": 1, "rho_": 1}
            )

    def test_p_and_ps_mutually_exclusive(self):
        with pytest.raises(ServeError, match="not both"):
            parse_request(
                {"kind": "bound", "rho": 20.0, "p": 0.5, "ps": [0.5], "seed": 1}
            )

    def test_bound_without_p_rejected(self):
        with pytest.raises(ServeError, match="needs a p"):
            parse_request({"kind": "bound", "rho": 20.0, "seed": 1})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServeError, match="missing required field 'seed'"):
            parse_request({"kind": "bound", "rho": 20.0, "p": 0.5})

    def test_undecodable_line_rejected(self):
        with pytest.raises(ServeError, match="undecodable"):
            parse_request("{nope")

    def test_bad_values_are_configuration_errors(self):
        with pytest.raises(ConfigurationError, match="p must be in"):
            parse_request({"kind": "bound", "rho": 20.0, "p": 1.5, "seed": 1})
        with pytest.raises(ConfigurationError, match="rho must be"):
            parse_request({"kind": "bound", "rho": -1.0, "p": 0.5, "seed": 1})
        with pytest.raises(ConfigurationError, match="unknown request kind"):
            parse_request({"kind": "best", "rho": 20.0, "p": 0.5, "seed": 1})

    def test_request_key_stable_and_seed_sensitive(self):
        doc = {"kind": "bound", "rho": 20.0, "p": 0.5, "seed": 1}
        a = request_key(parse_request(doc))
        b = request_key(parse_request(dict(doc)))
        c = request_key(parse_request(dict(doc, seed=2)))
        assert a == b
        assert a != c
        assert len(a) == 64


class TestWorkload:
    def test_roundtrip(self, tmp_path):
        requests = make_workload(4, duplicates=3, replications=2)
        path = save_workload(tmp_path / "w.jsonl", requests)
        assert load_workload(path) == requests

    def test_duplicates_interleaved(self):
        requests = make_workload(4, duplicates=2)
        assert requests[0] == requests[4]
        assert requests[1] == requests[5]
        assert requests[0] != requests[1]

    def test_every_request_parses(self):
        for doc in make_workload(20, duplicates=1):
            parse_request(doc)

    def test_empty_and_malformed_files_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n\n")
        with pytest.raises(ServeError, match="empty"):
            load_workload(empty)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "bound"}\nnot json\n')
        with pytest.raises(ServeError, match="undecodable workload line 2"):
            load_workload(bad)

    def test_bad_generation_parameters(self):
        with pytest.raises(ServeError, match="must be > 0"):
            make_workload(0)

    def test_percentile_interpolates(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert _percentile([5.0], 0.95) == 5.0


class TestStdioLoop:
    def test_json_lines_in_json_lines_out(self, tmp_path):
        import asyncio

        from repro.serve.cli import _serve_stdio

        good = json.dumps(
            {
                "kind": "bound",
                "rho": 15.0,
                "p": 0.5,
                "seed": 7,
                "replications": 2,
                "n_rings": 3,
            }
        )
        stdin = io.StringIO(good + "\n" + good + "\n\nnot json\n")
        stdout = io.StringIO()

        async def _go():
            async with QueryService(tmp_path / "store") as service:
                return await _serve_stdio(service, stdin, stdout)

        assert asyncio.run(_go()) == 0
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert sorted(doc["seq"] for doc in lines) == [1, 2, 3]
        by_seq = {doc["seq"]: doc for doc in lines}
        assert by_seq[1]["kind"] == "bound"
        assert by_seq[1]["id"] == by_seq[2]["id"]  # identical queries
        assert by_seq[3]["error"].startswith("ServeError")


class TestBenchCommand:
    @pytest.fixture
    def workload_file(self, tmp_path):
        requests = make_workload(4, duplicates=2, replications=2, n_rings=3)
        return save_workload(tmp_path / "w.jsonl", requests)

    def test_make_workload_mode(self, tmp_path, capsys):
        out = tmp_path / "w.jsonl"
        code = serve_cli(
            [
                str(tmp_path / "store"),
                "--make-workload",
                str(out),
                "--queries",
                "6",
                "--duplicates",
                "3",
            ]
        )
        assert code == 0
        assert len(load_workload(out)) == 18
        assert "18 requests (6 distinct x 3)" in capsys.readouterr().out

    def test_bench_reports_and_merges_perf(
        self, tmp_path, workload_file, capsys
    ):
        ShardedBackend(tmp_path / "store")  # bench over the new layout
        perf = tmp_path / "perf.json"
        perf.write_text(json.dumps({"current": {"existing": 1.0}, "seed": {}}))
        trace = tmp_path / "trace.json"
        code = serve_cli(
            [
                str(tmp_path / "store"),
                "--bench",
                str(workload_file),
                "--perf-json",
                str(perf),
                "--trace",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cold:" in out and "warm:" in out
        ledger = json.loads(perf.read_text())
        current = ledger["current"]
        assert current["existing"] == 1.0  # merge, not overwrite
        for key in (
            "serve.bench.cold_p50_s",
            "serve.bench.cold_total_s",
            "serve.bench.cold_coalescing_ratio",
            "serve.bench.warm_p50_s",
            "serve.bench.warm_p95_s",
        ):
            assert key in current
        # Duplicates interleaved → the cold pass must coalesce.
        assert current["serve.bench.cold_coalescing_ratio"] > 1.5
        assert current["serve.bench.warm_p50_s"] < 1.0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]

    def test_bench_empty_workload_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "w.jsonl"
        empty.write_text("\n")
        code = serve_cli([str(tmp_path / "store"), "--bench", str(empty)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
