"""mu'(K1, K2, s) — Appendix A's two-type collision probability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collision.carrier import (
    CarrierCollisionTable,
    mu_carrier_exact,
    mu_carrier_real,
    no_good_slot_table,
)
from repro.collision.poisson import mu_poisson_carrier
from repro.collision.slots import mu_exact


def mc_mu_carrier(k1, k2, s, rng, trials=60_000):
    hits = 0
    for _ in range(trials):
        a = np.bincount(rng.integers(0, s, size=k1), minlength=s)
        b = np.bincount(rng.integers(0, s, size=k2), minlength=s)
        hits += bool(((a == 1) & (b == 0)).any())
    return hits / trials


class TestBaseCases:
    def test_reduces_to_mu_when_k2_zero(self):
        for k in range(1, 12):
            assert mu_carrier_exact(k, 0, 3) == pytest.approx(
                mu_exact(k, 3), rel=1e-12
            )

    def test_no_in_range_transmitter(self):
        assert mu_carrier_exact(0, 5, 3) == 0.0

    def test_single_pair_single_slot(self):
        assert mu_carrier_exact(1, 0, 1) == 1.0
        assert mu_carrier_exact(1, 1, 1) == 0.0

    def test_one_each_two_slots(self):
        # Success iff they pick different slots: 1/2.
        assert mu_carrier_exact(1, 1, 2) == pytest.approx(0.5, rel=1e-12)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_carrier_exact(-1, 0, 3)


class TestMonteCarlo:
    @pytest.mark.parametrize("k1,k2", [(1, 2), (3, 2), (2, 5), (4, 1)])
    def test_against_simulation(self, k1, k2, rng):
        assert mu_carrier_exact(k1, k2, 3) == pytest.approx(
            mc_mu_carrier(k1, k2, 3, rng), abs=0.01
        )


class TestTable:
    def test_table_matches_scalars(self):
        table = CarrierCollisionTable()
        for k1 in range(4):
            for k2 in range(4):
                assert table.mu(k1, k2, 3) == pytest.approx(
                    mu_carrier_exact(k1, k2, 3), rel=1e-12
                )

    def test_no_good_slot_is_probability(self):
        q = no_good_slot_table(10, 10, 3)
        assert np.all((q >= -1e-12) & (q <= 1 + 1e-12))

    def test_exact_limit_enforced(self):
        table = CarrierCollisionTable(exact_limit=10)
        with pytest.raises(ValueError, match="exact_limit"):
            table.mu(8, 8, 3)


class TestRealExtension:
    def test_matches_integers(self):
        for k1, k2 in [(1, 0), (2, 3), (4, 2)]:
            assert mu_carrier_real(float(k1), float(k2), 3) == pytest.approx(
                mu_carrier_exact(k1, k2, 3), rel=1e-9
            )

    def test_bilinear_between(self):
        corners = [mu_carrier_exact(a, b, 3) for a, b in [(1, 1), (2, 1), (1, 2), (2, 2)]]
        expected = np.mean(corners)
        assert mu_carrier_real(1.5, 1.5, 3) == pytest.approx(expected, rel=1e-9)

    def test_poisson_fallback_for_large_counts(self):
        table = CarrierCollisionTable(exact_limit=8)
        val = table.mu_real(20.0, 30.0, 3)
        assert val == pytest.approx(mu_poisson_carrier(20.0, 30.0, 3), rel=1e-12)

    def test_fallback_is_continuous_at_crossover(self):
        # Exact bilinear and Poisson closed form agree well at moderate counts.
        table = CarrierCollisionTable(exact_limit=96)
        exact = table.mu_real(30.0, 30.0, 3)
        poisson = mu_poisson_carrier(30.0, 30.0, 3)
        assert exact == pytest.approx(poisson, abs=5e-3)

    def test_vectorized_mixed_regions(self):
        out = mu_carrier_real(np.array([1.0, 80.0]), np.array([1.0, 80.0]), 3)
        assert out.shape == (2,)
        assert np.all((out >= 0) & (out <= 1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_carrier_real(-1.0, 0.0, 3)


class TestProperties:
    @given(
        k1=st.integers(min_value=1, max_value=12),
        k2=st.integers(min_value=0, max_value=12),
        s=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_unit_interval(self, k1, k2, s):
        assert 0.0 <= mu_carrier_exact(k1, k2, s) <= 1.0

    @given(k1=st.integers(min_value=1, max_value=10), s=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_decreasing_in_carrier_traffic(self, k1, s):
        vals = [mu_carrier_exact(k1, k2, s) for k2 in range(8)]
        assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:], strict=False))

    @given(k2=st.integers(min_value=0, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_bounded_by_plain_mu(self, k2):
        for k1 in range(1, 8):
            assert mu_carrier_exact(k1, k2, 3) <= mu_exact(k1, 3) + 1e-12
