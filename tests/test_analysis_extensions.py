"""Surrogate (effective-probability) models of the suppression schemes."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.extensions import (
    distance_effective_probability,
    measured_relay_fraction,
    surrogate_model,
)
from repro.protocols import (
    CounterBasedRelay,
    DistanceBasedRelay,
    NeighborKnowledgeRelay,
    ProbabilisticRelay,
    SimpleFlooding,
)
from repro.sim.config import SimulationConfig
from repro.errors import ConfigurationError


@pytest.fixture
def cfg():
    return AnalysisConfig(n_rings=4, rho=40, quad_nodes=48)


class TestClosedForm:
    def test_annulus_fraction(self):
        assert distance_effective_probability(0.0) == 1.0
        assert distance_effective_probability(1.0) == 0.0
        assert distance_effective_probability(0.5) == pytest.approx(0.75)

    def test_extra_thinning(self):
        assert distance_effective_probability(0.5, p=0.4) == pytest.approx(0.3)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            distance_effective_probability(1.5)


class TestMeasuredFraction:
    def test_pb_recovers_its_own_p(self, cfg):
        sim = SimulationConfig(analysis=cfg)
        frac = measured_relay_fraction(
            ProbabilisticRelay(0.3), sim, 5, replications=6
        )
        assert frac == pytest.approx(0.3, abs=0.04)

    def test_flooding_is_one(self, cfg):
        sim = SimulationConfig(analysis=cfg)
        frac = measured_relay_fraction(SimpleFlooding(), sim, 5, replications=3)
        assert frac == pytest.approx(1.0, abs=1e-9)

    def test_distance_fraction_at_least_annulus(self, cfg):
        """Wavefront informers arrive biased toward maximum range, so the
        measured relay fraction exceeds the area-uniform closed form."""
        sim = SimulationConfig(analysis=cfg)
        frac = measured_relay_fraction(
            DistanceBasedRelay(0.6), sim, 5, replications=6
        )
        assert frac >= distance_effective_probability(0.6) - 0.02

    def test_deterministic(self, cfg):
        sim = SimulationConfig(analysis=cfg)
        a = measured_relay_fraction(CounterBasedRelay(2), sim, 9, replications=3)
        b = measured_relay_fraction(CounterBasedRelay(2), sim, 9, replications=3)
        assert a == b


class TestSurrogate:
    @pytest.mark.parametrize(
        "policy",
        [
            DistanceBasedRelay(0.6),
            CounterBasedRelay(threshold=2),
            NeighborKnowledgeRelay(),
        ],
        ids=lambda p: p.name,
    )
    def test_predicts_final_reachability(self, cfg, policy):
        sr = surrogate_model(policy, cfg, seed=3, replications=5)
        simulated = np.mean([r.reachability for r in sr.simulated])
        assert abs(sr.trace.final_reachability - simulated) < 0.06

    def test_reachability_error_metric(self, cfg):
        sr = surrogate_model(DistanceBasedRelay(0.5), cfg, seed=4, replications=4)
        assert 0.0 <= sr.reachability_error(5) < 0.25

    def test_closed_form_source_labeled(self, cfg):
        sr = surrogate_model(
            DistanceBasedRelay(0.6),
            cfg,
            seed=5,
            p_eff=distance_effective_probability(0.6),
            replications=3,
        )
        assert sr.p_eff_source == "closed-form"
        assert sr.p_eff == pytest.approx(0.64)

    def test_measured_source_labeled(self, cfg):
        sr = surrogate_model(CounterBasedRelay(2), cfg, seed=6, replications=3)
        assert sr.p_eff_source == "measured"
        assert 0.0 < sr.p_eff <= 1.0

    def test_no_validation_runs(self, cfg):
        sr = surrogate_model(
            DistanceBasedRelay(0.6), cfg, seed=7, replications=3, validate=False
        )
        assert sr.simulated == []
        with pytest.raises(ValueError, match="without validation"):
            sr.reachability_error(5)
