"""The four paper metrics as standalone evaluators."""

import pytest

from repro.analysis.metrics import (
    energy_at_reachability,
    latency_at_reachability,
    reachability_at_energy,
    reachability_at_latency,
)
from repro.analysis.ring_model import RingModel
from repro.errors import ConfigurationError, InfeasibleConstraintError


class TestReachabilityAtLatency:
    def test_matches_trace(self, paper_config):
        model = RingModel(paper_config)
        direct = model.run(0.2, max_phases=5).reachability_after(5)
        assert reachability_at_latency(paper_config, 0.2, 5) == pytest.approx(direct)

    def test_accepts_prebuilt_model(self, paper_config):
        model = RingModel(paper_config)
        assert reachability_at_latency(model, 0.2, 5) == pytest.approx(
            reachability_at_latency(paper_config, 0.2, 5)
        )

    def test_monotone_in_latency_budget(self, paper_config):
        r3 = reachability_at_latency(paper_config, 0.2, 3)
        r5 = reachability_at_latency(paper_config, 0.2, 5)
        assert r5 >= r3

    def test_fractional_budget(self, paper_config):
        r45 = reachability_at_latency(paper_config, 0.2, 4.5)
        r4 = reachability_at_latency(paper_config, 0.2, 4)
        r5 = reachability_at_latency(paper_config, 0.2, 5)
        assert r4 <= r45 <= r5

    def test_invalid_latency(self, paper_config):
        with pytest.raises(ConfigurationError):
            reachability_at_latency(paper_config, 0.2, 0)


class TestLatencyAtReachability:
    def test_roundtrip_with_reachability(self, paper_config):
        t = latency_at_reachability(paper_config, 0.3, 0.6)
        r = reachability_at_latency(paper_config, 0.3, t)
        assert r == pytest.approx(0.6, abs=1e-6)

    def test_infeasible_raises(self, paper_config):
        with pytest.raises(InfeasibleConstraintError):
            latency_at_reachability(paper_config, 0.005, 0.72, max_phases=60)

    def test_higher_target_takes_longer(self, paper_config):
        t1 = latency_at_reachability(paper_config, 0.3, 0.4)
        t2 = latency_at_reachability(paper_config, 0.3, 0.7)
        assert t2 > t1


class TestEnergyAtReachability:
    def test_positive_and_at_least_one(self, paper_config):
        m = energy_at_reachability(paper_config, 0.3, 0.5)
        assert m >= 1.0  # the source always broadcasts

    def test_higher_target_costs_more(self, paper_config):
        m1 = energy_at_reachability(paper_config, 0.3, 0.4)
        m2 = energy_at_reachability(paper_config, 0.3, 0.7)
        assert m2 > m1

    def test_infeasible_raises(self, paper_config):
        with pytest.raises(InfeasibleConstraintError):
            energy_at_reachability(paper_config, 0.005, 0.72, max_phases=60)


class TestReachabilityAtEnergy:
    def test_monotone_in_budget(self, paper_config):
        r1 = reachability_at_energy(paper_config, 0.1, 10)
        r2 = reachability_at_energy(paper_config, 0.1, 40)
        assert r2 >= r1

    def test_duality_with_energy_metric(self, paper_config):
        budget = energy_at_reachability(paper_config, 0.1, 0.6)
        reach = reachability_at_energy(paper_config, 0.1, budget)
        assert reach == pytest.approx(0.6, abs=1e-6)

    def test_invalid_budget(self, paper_config):
        with pytest.raises(ConfigurationError):
            reachability_at_energy(paper_config, 0.1, 0)
