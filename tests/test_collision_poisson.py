"""Poisson closed forms: exactness of the mixture identity and limits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collision.poisson import (
    expected_singleton_slots_poisson,
    mu_poisson,
    mu_poisson_carrier,
    mu_poisson_mixture,
)


class TestMuPoisson:
    def test_zero(self):
        assert mu_poisson(0.0, 3) == 0.0

    def test_large_lambda_vanishes(self):
        assert mu_poisson(500.0, 3) == pytest.approx(0.0, abs=1e-12)

    @given(lam=st.floats(min_value=0.01, max_value=30.0), s=st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_mixture_identity(self, lam, s):
        # Per-slot Poisson independence makes the closed form exactly the
        # Poisson mixture of the fixed-K table (independent implementations).
        assert mu_poisson(lam, s) == pytest.approx(
            mu_poisson_mixture(lam, s), abs=1e-8
        )

    @given(lam=st.floats(min_value=0.0, max_value=100.0), s=st.integers(1, 8))
    @settings(max_examples=150, deadline=None)
    def test_unit_interval(self, lam, s):
        assert 0.0 <= mu_poisson(lam, s) <= 1.0

    def test_vectorized(self):
        out = mu_poisson(np.array([0.0, 1.0, 5.0]), 3)
        assert out.shape == (3,)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_poisson(-1.0, 3)

    def test_monte_carlo(self, rng):
        lam, s = 3.0, 3
        hits = 0
        trials = 60_000
        ks = rng.poisson(lam, size=trials)
        for k in ks:
            if k == 0:
                continue
            counts = np.bincount(rng.integers(0, s, size=k), minlength=s)
            hits += bool((counts == 1).any())
        assert mu_poisson(lam, s) == pytest.approx(hits / trials, abs=0.01)


class TestMuPoissonCarrier:
    def test_reduces_to_plain_when_no_carrier_traffic(self):
        for lam in (0.5, 2.0, 8.0):
            assert mu_poisson_carrier(lam, 0.0, 3) == pytest.approx(
                mu_poisson(lam, 3), rel=1e-12
            )

    def test_carrier_traffic_only_hurts(self):
        base = mu_poisson_carrier(2.0, 0.0, 3)
        for lam2 in (0.5, 1.0, 5.0):
            assert mu_poisson_carrier(2.0, lam2, 3) < base

    def test_zero_in_range(self):
        assert mu_poisson_carrier(0.0, 3.0, 3) == 0.0

    @given(
        l1=st.floats(min_value=0.0, max_value=40.0),
        l2=st.floats(min_value=0.0, max_value=40.0),
        s=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_unit_interval(self, l1, l2, s):
        assert 0.0 <= mu_poisson_carrier(l1, l2, s) <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_poisson_carrier(1.0, -1.0, 3)


class TestExpectedSingletons:
    def test_formula(self):
        lam, s = 4.0, 3
        assert expected_singleton_slots_poisson(lam, s) == pytest.approx(
            lam * np.exp(-lam / s)
        )

    def test_zero(self):
        assert expected_singleton_slots_poisson(0.0, 3) == 0.0

    def test_monte_carlo(self, rng):
        lam, s = 2.5, 3
        total = 0
        trials = 50_000
        for k in rng.poisson(lam, size=trials):
            counts = np.bincount(rng.integers(0, s, size=k), minlength=s)
            total += int((counts == 1).sum())
        assert expected_singleton_slots_poisson(lam, s) == pytest.approx(
            total / trials, abs=0.02
        )
