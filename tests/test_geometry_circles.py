"""Circle intersection area (paper Eq. 1): exactness and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circles import intersection_area, lens_area, paper_f

radii = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
dists = st.floats(min_value=0.0, max_value=120.0, allow_nan=False)


class TestKnownValues:
    def test_identical_circles_zero_distance(self):
        assert intersection_area(2.0, 2.0, 0.0) == pytest.approx(np.pi * 4.0)

    def test_disjoint(self):
        assert intersection_area(1.0, 1.0, 2.5) == 0.0

    def test_tangent_external(self):
        assert intersection_area(1.0, 1.0, 2.0) == pytest.approx(0.0, abs=1e-12)

    def test_contained(self):
        assert intersection_area(5.0, 1.0, 1.0) == pytest.approx(np.pi)

    def test_tangent_internal(self):
        assert intersection_area(2.0, 1.0, 1.0) == pytest.approx(np.pi, abs=1e-9)

    def test_half_overlap_unit_circles(self):
        # Standard lens: two unit circles at distance 1.
        expected = 2.0 * np.arccos(0.5) - np.sqrt(3.0) / 2.0
        assert intersection_area(1.0, 1.0, 1.0) == pytest.approx(expected, rel=1e-12)

    def test_zero_radius_circle(self):
        assert intersection_area(0.0, 1.0, 0.5) == 0.0
        assert intersection_area(1.0, 0.0, 0.5) == 0.0

    def test_monte_carlo_reference(self, rng):
        # Estimate the overlap of r1=2, r2=1.3, d=1.7 by rejection sampling.
        r1, r2, d = 2.0, 1.3, 1.7
        pts = rng.uniform(-r1, r1, size=(400_000, 2))
        inside1 = (pts**2).sum(axis=1) <= r1**2
        inside2 = ((pts[:, 0] - d) ** 2 + pts[:, 1] ** 2) <= r2**2
        est = (inside1 & inside2).mean() * (2 * r1) ** 2
        assert intersection_area(r1, r2, d) == pytest.approx(est, rel=0.02)


class TestVectorization:
    def test_array_inputs(self):
        d = np.array([0.0, 1.0, 2.5])
        out = intersection_area(1.0, 1.0, d)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(np.pi)
        assert out[2] == 0.0

    def test_scalar_returns_scalar(self):
        assert isinstance(intersection_area(1.0, 1.0, 0.5), float)

    def test_broadcasting(self):
        out = intersection_area(np.array([[1.0], [2.0]]), 1.0, np.array([0.5, 1.0]))
        assert out.shape == (2, 2)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            intersection_area(-1.0, 1.0, 0.5)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            intersection_area(1.0, 1.0, -0.1)


class TestProperties:
    @given(r1=radii, r2=radii, d=dists)
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_smaller_disk(self, r1, r2, d):
        area = intersection_area(r1, r2, d)
        assert -1e-9 <= area <= np.pi * min(r1, r2) ** 2 + 1e-9

    @given(r1=radii, r2=radii, d=dists)
    @settings(max_examples=200, deadline=None)
    def test_symmetric_in_radii(self, r1, r2, d):
        assert intersection_area(r1, r2, d) == pytest.approx(
            intersection_area(r2, r1, d), rel=1e-9, abs=1e-12
        )

    @given(r1=radii, r2=radii)
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing_in_distance(self, r1, r2):
        ds = np.linspace(0.0, r1 + r2 + 1.0, 40)
        areas = intersection_area(r1, r2, ds)
        assert np.all(np.diff(areas) <= 1e-9)

    @given(r1=radii, r2=radii, d=dists, scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_scales_quadratically(self, r1, r2, d, scale):
        a = intersection_area(r1, r2, d)
        b = intersection_area(r1 * scale, r2 * scale, d * scale)
        # rel 1e-4: near tangency with extreme radius ratios the arccos
        # form loses ~half the mantissa; exact scaling is not expected.
        assert b == pytest.approx(a * scale**2, rel=1e-4, abs=1e-9)


class TestPaperParameterization:
    def test_paper_f_matches_center_distance_form(self):
        # x is distance from L2's center to L1's border: d = D1 + x.
        assert paper_f(2.0, 1.0, 0.5) == pytest.approx(
            intersection_area(2.0, 1.0, 2.5)
        )

    def test_negative_x_inside(self):
        # center of L2 inside L1 by 0.5.
        assert paper_f(2.0, 1.0, -0.5) == pytest.approx(
            intersection_area(2.0, 1.0, 1.5)
        )

    def test_lens_area_agrees_in_proper_regime(self):
        r1, r2, d = 2.0, 1.5, 2.2
        assert lens_area(r1, r2, d) == pytest.approx(
            intersection_area(r1, r2, d), rel=1e-12
        )
