"""Disk backend: round-trips, checksums, atomicity, the advisory index."""

import json

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import StoreCorruptionError, StoreError
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore, pack_result, task_key, unpack_result


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


@pytest.fixture
def runs(cfg):
    return replicate(ProbabilisticRelay(0.5), cfg, 2, seed=7)


@pytest.fixture
def store(tmp_path):
    return DiskStore(tmp_path / "store")


def key_for(cfg, seed=7):
    return task_key(ProbabilisticRelay(0.5), cfg, seed, "vector", "phase")


def assert_results_identical(a, b):
    np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    np.testing.assert_array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.new_informed_by_slot.dtype == b.new_informed_by_slot.dtype
    assert (a.n_field_nodes, a.collisions, a.total_tx, a.total_rx) == (
        b.n_field_nodes,
        b.collisions,
        b.total_tx,
        b.total_rx,
    )
    assert a.seed_entropy == b.seed_entropy
    np.testing.assert_array_equal(a.trace.new_by_phase_ring, b.trace.new_by_phase_ring)
    assert a.trace.config == b.trace.config
    if a.informed_mask is None:
        assert b.informed_mask is None
    else:
        np.testing.assert_array_equal(a.informed_mask, b.informed_mask)
        assert a.informed_mask.dtype == b.informed_mask.dtype


class TestPackUnpack:
    def test_round_trip_bit_identical(self, runs):
        for r in runs:
            assert_results_identical(r, unpack_result(pack_result(r)))

    def test_metrics_not_persisted(self, runs):
        assert "metrics" not in pack_result(runs[0])
        assert unpack_result(pack_result(runs[0])).metrics is None


class TestDiskStore:
    def test_put_get_round_trip(self, store, cfg, runs):
        key = key_for(cfg)
        nbytes = store.put(key, runs)
        assert nbytes > 0
        got = store.get(key)
        assert len(got) == len(runs)
        for a, b in zip(runs, got, strict=True):
            assert_results_identical(a, b)

    def test_missing_key_is_none(self, store, cfg):
        assert store.get(key_for(cfg)) is None
        assert key_for(cfg) not in store

    def test_bad_key_rejected(self, store):
        with pytest.raises(StoreError):
            store.get("not-a-key")

    def test_tampered_payload_detected(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        path = store.path_for(key)
        doc = json.loads(path.read_text())
        doc["payload_json"] = doc["payload_json"].replace(
            '"collisions":', '"collisions": 9', 1
        )
        path.write_text(json.dumps(doc))
        with pytest.raises(StoreCorruptionError):
            store.get(key)

    def test_truncated_entry_detected(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        path = store.path_for(key)
        path.write_text(path.read_text()[: 50])
        with pytest.raises(StoreCorruptionError):
            store.get(key)

    def test_no_tmp_left_behind(self, store, cfg, runs):
        store.put(key_for(cfg), runs)
        assert list(store.objects_dir.rglob("*.tmp")) == []

    def test_delete(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        assert store.delete(key) is True
        assert store.get(key) is None
        assert store.delete(key) is False

    def test_keys_sorted(self, store, cfg, runs):
        ks = [key_for(cfg, seed=s) for s in (1, 2, 3)]
        for k in ks:
            store.put(k, runs[:1])
        assert list(store.keys()) == sorted(ks)

    def test_stats_and_verify(self, store, cfg, runs):
        store.put(key_for(cfg), runs)
        stats = store.stats()
        assert stats["entries"] == 1 and stats["nbytes"] > 0
        assert store.verify() == []

    def test_verify_reports_corruption(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        store.path_for(key).write_text("garbage")
        bad = store.verify()
        assert len(bad) == 1 and bad[0][0] == key

    def test_get_touches_mtime(self, store, cfg, runs):
        import os

        key = key_for(cfg)
        store.put(key, runs)
        path = store.path_for(key)
        os.utime(path, (1.0, 1.0))
        store.get(key)
        assert path.stat().st_mtime > 1.0

    def test_reopen_existing_store(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        again = DiskStore(store.root)
        got = again.get(key)
        assert got is not None and len(got) == len(runs)

    def test_wrong_schema_rejected(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "store.json").write_text('{"schema": "something/else"}')
        with pytest.raises(StoreError):
            DiskStore(root)

    def test_index_rebuilt_from_objects(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        store.flush_index()
        (store.root / "index.json").write_text("garbage")
        fresh = DiskStore(store.root)
        assert set(fresh.load_index()) == {key}

    def test_flush_index_persists(self, store, cfg, runs):
        key = key_for(cfg)
        store.put(key, runs)
        store.flush_index()
        doc = json.loads((store.root / "index.json").read_text())
        assert key in doc["entries"]
