"""Cross-layer integration: analysis vs simulation, engine vs engine, API."""

import numpy as np

import repro
from repro.analysis import AnalysisConfig, RingModel, optimal_probability
from repro.protocols.pbcast import SimpleFlooding
from repro.sim import SimulationConfig, aggregate_metric, simulate_pb
from repro.sim.runner import replicate


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        cfg = repro.AnalysisConfig(n_rings=3, rho=30, quad_nodes=32)
        best = repro.optimal_probability(
            cfg, "reachability_at_latency", 4, p_grid=np.arange(0.1, 1.01, 0.1)
        )
        assert 0 < best.p <= 1.0
        sim = repro.SimulationConfig(analysis=cfg)
        runs = repro.simulate_pb(sim, best.p, replications=3, seed=0)
        agg = repro.aggregate_metric(runs, lambda r: r.reachability_after_phases(4))
        assert 0.0 < agg.mean <= 1.0


class TestAnalysisVsSimulation:
    """The paper's central validation: simulation confirms the analysis."""

    def test_optimal_p_trend_agrees(self):
        """Both worlds must show the optimal p shrinking with density."""
        sim_opts = []
        ana_opts = []
        grid = np.array([0.1, 0.3, 0.5, 0.7, 1.0])
        for rho in (20, 100):
            cfg = AnalysisConfig(n_rings=4, rho=rho, quad_nodes=48)
            ana = optimal_probability(
                cfg, "reachability_at_latency", 5, p_grid=grid
            )
            ana_opts.append(ana.p)
            sim_cfg = SimulationConfig(analysis=cfg)
            means = []
            for p in grid:
                runs = simulate_pb(sim_cfg, float(p), replications=6, seed=int(rho))
                means.append(
                    aggregate_metric(
                        runs, lambda r: r.reachability_after_phases(5)
                    ).mean
                )
            sim_opts.append(grid[int(np.argmax(means))])
        assert ana_opts[1] < ana_opts[0]
        assert sim_opts[1] < sim_opts[0]

    def test_flooding_degradation_with_density(self):
        """Fig 4a/8: at p = 1, reachability within 5 phases drops as rho
        grows — in the model and in the simulator."""
        ana = []
        sim = []
        for rho in (20, 100):
            cfg = AnalysisConfig(n_rings=4, rho=rho, quad_nodes=48)
            ana.append(RingModel(cfg).run(1.0, max_phases=5).reachability_after(5))
            runs = replicate(
                SimpleFlooding(), SimulationConfig(analysis=cfg), 6, seed=rho
            )
            sim.append(
                aggregate_metric(runs, lambda r: r.reachability_after_phases(5)).mean
            )
        assert ana[1] < ana[0]
        assert sim[1] < sim[0]

    def test_analysis_upper_bounds_simulation_loosely(self):
        """The analysis is optimistic (perfect sync, expectation dynamics):
        simulated 5-phase reachability at the analytic optimum lands below
        the analytic value, but within a sane band — the paper's 72%-vs-63%
        gap is ~13%; allow up to ~45% relative."""
        cfg = AnalysisConfig(n_rings=5, rho=60)
        p = 0.21  # near the analytic optimum at rho = 60
        analytic = RingModel(cfg).run(p, max_phases=5).reachability_after(5)
        runs = simulate_pb(SimulationConfig(analysis=cfg), p, replications=8, seed=3)
        simulated = aggregate_metric(
            runs, lambda r: r.reachability_after_phases(5)
        ).mean
        assert simulated < analytic
        assert simulated > 0.55 * analytic

    def test_energy_optimal_band_agrees(self):
        """Fig 6/10: in both worlds the energy-optimal p is small."""
        cfg = AnalysisConfig(n_rings=4, rho=60, quad_nodes=48)
        grid = np.array([0.05, 0.1, 0.2, 0.4, 0.8])
        ana = optimal_probability(
            cfg, "energy_at_reachability", 0.6, p_grid=grid
        )
        sim_cfg = SimulationConfig(analysis=cfg)
        means = []
        for p in grid:
            runs = simulate_pb(sim_cfg, float(p), replications=6, seed=11)
            means.append(
                aggregate_metric(runs, lambda r: r.broadcasts_to(0.6)).mean
            )
        sim_opt = grid[int(np.nanargmin(means))]
        assert ana.p <= 0.2 and sim_opt <= 0.2


class TestProtocolOrdering:
    def test_suppression_protocols_use_less_energy_than_flooding(self):
        from repro.protocols import (
            CounterBasedRelay,
            DistanceBasedRelay,
            NeighborKnowledgeRelay,
        )

        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=40))
        flood = np.mean(
            [r.broadcasts_total for r in replicate(SimpleFlooding(), cfg, 4, seed=0)]
        )
        for policy in (
            CounterBasedRelay(threshold=2),
            DistanceBasedRelay(0.6),
            NeighborKnowledgeRelay(),
        ):
            cost = np.mean(
                [r.broadcasts_total for r in replicate(policy, cfg, 4, seed=0)]
            )
            assert cost < flood, policy.name

    def test_suppression_protocols_retain_high_reachability(self):
        from repro.protocols import CounterBasedRelay, NeighborKnowledgeRelay

        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=40))
        for policy in (CounterBasedRelay(threshold=3), NeighborKnowledgeRelay()):
            reach = np.mean(
                [r.reachability for r in replicate(policy, cfg, 4, seed=1)]
            )
            assert reach > 0.8, policy.name
