"""The DES kernel: ordering, cancellation, budgets, processes."""

import pytest

from repro.des.process import Timeout
from repro.des.simulator import Simulator
from repro.errors import SimulationError


class TestOrdering:
    def test_time_order(self):
        sim, log = Simulator(), []
        sim.schedule(2.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run()
        assert log == ["early", "late"]

    def test_priority_breaks_ties(self):
        sim, log = Simulator(), []
        sim.schedule(1.0, log.append, "start", priority=1)
        sim.schedule(1.0, log.append, "end", priority=0)
        sim.run()
        assert log == ["end", "start"]

    def test_insertion_order_breaks_remaining_ties(self):
        sim, log = Simulator(), []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(3.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 3.0]

    def test_callbacks_can_schedule_more(self):
        sim, log = Simulator(), []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestScheduleValidation:
    def test_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, print)

    def test_past_absolute_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, print)

    def test_nan_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(float("nan"), print)


class TestCancel:
    def test_cancelled_event_skipped(self):
        sim, log = Simulator(), []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_cancel_idempotent(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        sim.run()

    def test_cancel_after_execution_harmless(self):
        sim, log = Simulator(), []
        h = sim.schedule(1.0, log.append, "x")
        sim.run()
        h.cancel()
        assert log == ["x"]


class TestRunControls:
    def test_until_stops_and_advances_clock(self):
        sim, log = Simulator(), []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(10.0, log.append, "b")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert log == ["a", "b"]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(0.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestProcesses:
    def test_generator_process(self):
        sim, log = Simulator(), []

        def proc():
            log.append(("start", sim.now))
            yield Timeout(2.0)
            log.append(("mid", sim.now))
            yield Timeout(3.0)
            log.append(("end", sim.now))

        sim.process(proc())
        sim.run()
        assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a timeout"

        sim.process(proc())
        with pytest.raises(SimulationError, match="Timeout"):
            sim.run()

    def test_two_processes_interleave(self):
        sim, log = Simulator(), []

        def proc(name, step):
            for _ in range(2):
                yield Timeout(step)
                log.append((name, sim.now))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]
