"""Singleton-count distribution: over-determined consistency checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collision.counts import duplicates_at_least, singleton_count_distribution
from repro.collision.slots import expected_singleton_slots, mu_exact


class TestKnownCases:
    def test_zero_items(self):
        pmf = singleton_count_distribution(0, 3)
        assert pmf[0] == 1.0 and pmf[1:].sum() == 0.0

    def test_one_item_always_one_singleton(self):
        pmf = singleton_count_distribution(1, 4)
        assert pmf[1] == pytest.approx(1.0)

    def test_two_items_two_slots(self):
        # Same slot (p=1/2): 0 singletons; different slots: 2 singletons.
        pmf = singleton_count_distribution(2, 2)
        assert pmf[0] == pytest.approx(0.5)
        assert pmf[1] == pytest.approx(0.0, abs=1e-12)
        assert pmf[2] == pytest.approx(0.5)

    def test_single_slot(self):
        assert singleton_count_distribution(1, 1)[1] == pytest.approx(1.0)
        assert singleton_count_distribution(3, 1)[0] == pytest.approx(1.0)


class TestConsistency:
    @given(k=st.integers(min_value=0, max_value=40), s=st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_is_a_distribution(self, k, s):
        pmf = singleton_count_distribution(k, s)
        assert pmf.shape == (s + 1,)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(k=st.integers(min_value=1, max_value=40), s=st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_tail_matches_mu(self, k, s):
        # P(S >= 1) must equal Eq. (2)'s mu — two independent DPs.
        pmf = singleton_count_distribution(k, s)
        assert 1.0 - pmf[0] == pytest.approx(mu_exact(k, s), abs=1e-9)

    @given(k=st.integers(min_value=0, max_value=40), s=st.integers(min_value=2, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_mean_matches_linearity_formula(self, k, s):
        pmf = singleton_count_distribution(k, s)
        mean = float(np.dot(np.arange(s + 1), pmf))
        assert mean == pytest.approx(expected_singleton_slots(k, s), abs=1e-9)

    def test_impossible_count_k_minus(self):
        # With k=2 items you can never have exactly 1 singleton... in
        # fact S=1 requires one slot with 1 item and the other item(s)
        # grouped; with k=2 the second item alone would also be a
        # singleton, so S=1 has probability 0.
        pmf = singleton_count_distribution(2, 5)
        assert pmf[1] == pytest.approx(0.0, abs=1e-12)


class TestMonteCarlo:
    @pytest.mark.parametrize("k,s", [(4, 3), (7, 3), (5, 4)])
    def test_against_simulation(self, k, s, rng):
        pmf = singleton_count_distribution(k, s)
        counts = np.zeros(s + 1)
        trials = 40_000
        for _ in range(trials):
            occ = np.bincount(rng.integers(0, s, size=k), minlength=s)
            counts[int((occ == 1).sum())] += 1
        empirical = counts / trials
        np.testing.assert_allclose(empirical, pmf, atol=0.01)


class TestDuplicatesAtLeast:
    def test_threshold_zero(self):
        assert duplicates_at_least(5, 3, 0) == 1.0

    def test_threshold_one_is_mu(self):
        assert duplicates_at_least(5, 3, 1) == pytest.approx(mu_exact(5, 3))

    def test_threshold_above_slots(self):
        assert duplicates_at_least(5, 3, 4) == 0.0

    def test_monotone_in_threshold(self):
        vals = [duplicates_at_least(6, 4, t) for t in range(6)]
        assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:], strict=False))
