"""Terminal visualization: deterministic rendering contracts."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.network.deployment import DiskDeployment
from repro.network.grid import GridDeployment
from repro.viz import field_map, line_chart, sparkline, wave_heatmap


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_extremes(self):
        s = sparkline([0, 10])
        assert s[0] == "▁" and s[1] == "█"

    def test_nan_is_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_constant_series_mid_height(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1 and s[0] not in ("▁", "█")

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_pinned_scale(self):
        a = sparkline([0.5], lo=0.0, hi=1.0)
        b = sparkline([0.5, 0.0, 1.0])
        assert a == b[0]

    def test_monotone_input_monotone_glyphs(self):
        s = sparkline(np.linspace(0, 1, 8))
        order = "▁▂▃▄▅▆▇█"
        assert [order.index(c) for c in s] == sorted(order.index(c) for c in s)


class TestLineChart:
    def test_contains_title_series_and_axes(self):
        text = line_chart([0, 1, 2], {"y": [0.0, 0.5, 1.0]}, title="demo")
        assert "demo" in text
        assert "o y" in text
        assert "+" in text and "|" in text

    def test_marker_placed_at_corners(self):
        text = line_chart([0, 1], {"y": [0.0, 1.0]}, width=10, height=5)
        rows = [l for l in text.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert "o" in rows[-1]  # min at bottom-left

    def test_nan_points_skipped(self):
        text = line_chart([0, 1, 2], {"y": [0.0, float("nan"), 1.0]})
        assert text.count("o") == 2 + 1  # 2 points + legend marker

    def test_multi_series_markers_differ(self):
        text = line_chart([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "o a" in text and "x b" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            line_chart([0, 1], {"y": [1.0]})

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            line_chart([0.0], {"y": [float("nan")]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([], {})


class TestFieldMap:
    def test_disk_deployment(self, rng):
        dep = DiskDeployment.sample(rho=10, n_rings=2, rng=rng)
        text = field_map(dep, width=31)
        assert "S" in text and "." in text
        assert "field radius 2" in text

    def test_informed_mask(self, rng):
        dep = DiskDeployment.sample(rho=10, n_rings=2, rng=rng)
        informed = np.zeros(dep.n_nodes, dtype=bool)
        informed[1:5] = True
        text = field_map(dep, informed, width=31)
        assert "#" in text
        assert "(4)" in text

    def test_grid_deployment(self):
        dep = GridDeployment(side=7)
        text = field_map(dep, width=21, legend=False)
        assert "S" in text

    def test_bad_mask_shape(self, rng):
        dep = DiskDeployment.sample(rho=10, n_rings=2, rng=rng)
        with pytest.raises(ValueError, match="mask"):
            field_map(dep, np.zeros(3, dtype=bool))


class TestWaveHeatmap:
    @pytest.fixture
    def trace(self):
        cfg = AnalysisConfig(n_rings=3, rho=10)
        new = np.array([[10.0, 0.0, 0.0], [2.0, 8.0, 0.0], [0.0, 2.0, 6.0]])
        return BroadcastTrace(cfg, 0.4, new, np.array([1.0, 4.0, 4.0]))

    def test_one_row_per_ring(self, trace):
        text = wave_heatmap(trace)
        assert text.count("ring ") == 3

    def test_wavefront_visible(self, trace):
        # Each ring's peak phase is marked with the darkest shade.
        lines = [l for l in wave_heatmap(trace).splitlines() if l.startswith("ring ")]
        assert lines[0].split("|")[1][0] == "█"  # ring 1 peaks in phase 1
        assert lines[2].split("|")[1][2] == "█"  # ring 3 peaks in phase 3

    def test_global_normalization(self, trace):
        text = wave_heatmap(trace, normalize="global")
        assert "█" in text

    def test_summary_line(self, trace):
        text = wave_heatmap(trace)
        assert "reachability" in text and "broadcasts" in text

    def test_unknown_mode(self, trace):
        with pytest.raises(ValueError):
            wave_heatmap(trace, normalize="weird")

    def test_real_model_trace(self):
        from repro.analysis.ring_model import RingModel

        trace = RingModel(AnalysisConfig(rho=40)).run(0.3, max_phases=8)
        text = wave_heatmap(trace)
        assert text.count("ring ") == 5
