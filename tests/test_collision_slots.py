"""mu(K, s) — the paper's Eq. (2) — against closed forms and Monte Carlo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collision.slots import (
    SlotCollisionTable,
    expected_singleton_slots,
    mu_exact,
    mu_real,
    no_singleton_table,
)


def mc_mu(k: int, s: int, rng: np.random.Generator, trials: int = 100_000) -> float:
    draws = rng.integers(0, s, size=(trials, k))
    hits = 0
    for row in draws:
        counts = np.bincount(row, minlength=s)
        hits += bool((counts == 1).any())
    return hits / trials


class TestBaseCases:
    def test_zero_items(self):
        assert mu_exact(0, 3) == 0.0

    def test_one_item_always_succeeds(self):
        for s in (1, 2, 3, 7):
            assert mu_exact(1, s) == 1.0

    def test_two_items(self):
        # Fails iff both land in the same slot: mu = 1 - 1/s.
        for s in (2, 3, 5):
            assert mu_exact(2, s) == pytest.approx(1.0 - 1.0 / s, rel=1e-12)

    def test_single_slot(self):
        assert mu_exact(1, 1) == 1.0
        assert mu_exact(2, 1) == 0.0
        assert mu_exact(5, 1) == 0.0

    def test_three_items_two_slots(self):
        # Counts are (3,0),(0,3) w.p. 1/8 each; (2,1),(1,2) w.p. 3/8 each.
        assert mu_exact(3, 2) == pytest.approx(6.0 / 8.0, rel=1e-12)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_exact(-1, 3)


class TestMonteCarlo:
    @pytest.mark.parametrize("k,s", [(3, 3), (5, 3), (8, 3), (4, 2), (6, 5)])
    def test_against_simulation(self, k, s, rng):
        assert mu_exact(k, s) == pytest.approx(mc_mu(k, s, rng, 60_000), abs=0.01)


class TestTable:
    def test_matches_scalar(self):
        table = SlotCollisionTable(initial_kmax=16)
        for k in range(10):
            assert table.mu(k, 3) == pytest.approx(mu_exact(k, 3), rel=1e-12)

    def test_vectorized_lookup(self):
        table = SlotCollisionTable(initial_kmax=16)
        out = table.mu(np.array([0, 1, 2, 5]), 3)
        assert out.shape == (4,)
        assert out[1] == 1.0

    def test_grows_on_demand(self):
        table = SlotCollisionTable(initial_kmax=4)
        val = table.mu(100, 3)  # beyond initial capacity
        assert 0.0 <= val <= 1.0
        assert val == pytest.approx(mu_exact(100, 3), rel=1e-9)

    def test_negative_rejected(self):
        table = SlotCollisionTable()
        with pytest.raises(ValueError):
            table.mu(np.array([-2]), 3)

    def test_growth_preserves_values(self):
        """Growing the table keeps every previously-cached entry exact."""
        table = SlotCollisionTable(initial_kmax=8)
        before = table.table(3).copy()
        table.mu(500, 3)  # force several doublings
        after = table.table(3)
        assert len(after) >= 501
        np.testing.assert_array_equal(after[: len(before)], before)

    def test_covered_query_returns_cached_table(self, monkeypatch):
        """A query within the cached Kmax must not re-run the DP."""
        import repro.collision.slots as slots_mod

        table = SlotCollisionTable(initial_kmax=16)
        first = table.table(3, kmax=10)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("DP re-ran for a covered query")

        monkeypatch.setattr(slots_mod, "no_singleton_table", boom)
        assert table.table(3, kmax=10) is first
        assert table.table(3, kmax=16) is first  # len 17 > 16 still covers

    def test_other_slots_growth_does_not_rebuild(self, monkeypatch):
        """Growing the shared Kmax via one slot count must not force a
        rebuild of another slot count's still-sufficient table."""
        import repro.collision.slots as slots_mod

        table = SlotCollisionTable(initial_kmax=16)
        tab5 = table.table(5, kmax=10)
        table.table(3, kmax=200)  # grows the shared high-water mark
        monkeypatch.setattr(
            slots_mod,
            "no_singleton_table",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("spurious rebuild after cross-slots growth")
            ),
        )
        assert table.table(5, kmax=10) is tab5

    def test_growth_after_cross_slots_is_correct(self):
        """When a rebuild *is* needed it lands at the grown size."""
        table = SlotCollisionTable(initial_kmax=16)
        table.table(5, kmax=10)
        table.table(3, kmax=200)  # shared mark now >= 256
        grown = table.table(5, kmax=100)  # outgrew len-17 cache
        assert len(grown) >= 101
        assert table.mu(100, 5) == pytest.approx(mu_exact(100, 5), rel=1e-9)


class TestRealExtension:
    def test_interpolation_matches_integers(self):
        for k in range(6):
            assert mu_real(float(k), 3) == pytest.approx(mu_exact(k, 3), rel=1e-12)

    def test_interpolation_between(self):
        lo, hi = mu_exact(2, 3), mu_exact(3, 3)
        assert mu_real(2.5, 3) == pytest.approx(0.5 * (lo + hi), rel=1e-12)

    def test_small_lambda_linear(self):
        # Between K=0 (mu=0) and K=1 (mu=1): mu_real(lam) = lam.
        assert mu_real(0.3, 3) == pytest.approx(0.3, rel=1e-12)

    def test_vectorized(self):
        out = mu_real(np.linspace(0, 5, 11), 3)
        assert out.shape == (11,)

    def test_poisson_method_dispatch(self):
        from repro.collision.poisson import mu_poisson

        assert mu_real(2.7, 3, method="poisson") == pytest.approx(mu_poisson(2.7, 3))

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            mu_real(1.0, 3, method="magic")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mu_real(-0.1, 3)


class TestProperties:
    @given(k=st.integers(min_value=1, max_value=60), s=st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_in_unit_interval(self, k, s):
        assert 0.0 <= mu_exact(k, s) <= 1.0

    @given(s=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_eventually_decreasing_in_k(self, s):
        # mu is NOT monotone at small k (e.g. mu(3,2)=0.75 > mu(2,2)=0.5:
        # a third contender creates a singleton), but once the slots are
        # saturated (k >= 3s) more contenders only hurt.
        table = SlotCollisionTable(initial_kmax=128).table(s, 120)
        tail = table[3 * s : 120]
        assert np.all(np.diff(tail) <= 1e-12)

    @given(s=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_vanishes_at_high_contention(self, s):
        table = SlotCollisionTable(initial_kmax=512).table(s, 400)
        assert table[400] < 1e-4

    @given(k=st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_increasing_in_slots(self, k):
        # More slots can only help.
        vals = [mu_exact(k, s) for s in range(1, 8)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:], strict=False))

    @given(
        lam=st.floats(min_value=0.0, max_value=50.0),
        s=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_real_extension_bounded(self, lam, s):
        assert 0.0 <= mu_real(lam, s) <= 1.0

    def test_no_singleton_table_is_probability(self):
        q = no_singleton_table(64, 3)
        assert np.all((q >= -1e-12) & (q <= 1.0 + 1e-12))


class TestExpectedSingletons:
    def test_one_item(self):
        assert expected_singleton_slots(1, 3) == pytest.approx(1.0)

    def test_formula(self):
        assert expected_singleton_slots(4, 3) == pytest.approx(4 * (2 / 3) ** 3)

    def test_monte_carlo(self, rng):
        k, s = 6, 3
        draws = rng.integers(0, s, size=(60_000, k))
        singles = np.array(
            [(np.bincount(row, minlength=s) == 1).sum() for row in draws]
        )
        assert expected_singleton_slots(k, s) == pytest.approx(
            singles.mean(), abs=0.02
        )

    def test_zero(self):
        assert expected_singleton_slots(0, 3) == 0.0

    def test_continuous_extension_monotone_tail(self):
        ks = np.linspace(3, 40, 50)
        vals = expected_singleton_slots(ks, 3)
        assert np.all(np.diff(vals) < 0)  # past the mode it decays

    def test_single_slot_degenerate(self):
        assert expected_singleton_slots(1, 1) == 1.0
        assert expected_singleton_slots(3, 1) == 0.0
