"""Batch channels against the per-replication reference.

A batch channel resolving one slot over the stacked global id space
must produce exactly the concatenation (with offsets applied) of what
each replication's ordinary channel produces on the same local
transmitter sets — because the blocks are disjoint, the single
bincount pass cannot mix them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.cam import (
    BatchCollisionAwareChannel,
    CollisionAwareChannel,
    counts_and_senders,
)
from repro.models.cfm import BatchCollisionFreeChannel, CollisionFreeChannel
from repro.models.channel import gather_neighbors
from repro.network.deployment import DeploymentBatch

SEED = 20050113


@pytest.fixture(scope="module")
def batch():
    rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(SEED).spawn(4)]
    return DeploymentBatch.sample(rho=15.0, n_rings=3, rngs=rngs, population="poisson")


@pytest.fixture(scope="module")
def stacked(batch):
    return batch.stacked_topology()


def _random_tx(batch, rng):
    """Global transmitter ids, a random subset of each replication."""
    parts = []
    for r in range(batch.n_reps):
        lo, hi = int(batch.node_offsets[r]), int(batch.node_offsets[r + 1])
        n = hi - lo
        k = int(rng.integers(0, max(n // 3, 2)))
        parts.append(lo + rng.choice(n, size=min(k, n), replace=False))
    return np.sort(np.concatenate(parts).astype(np.int64))


def _reference_delivery(batch, make_channel, tx_global):
    """Per-replication channels, outputs re-offset into global ids."""
    recv, send, coll = [], [], []
    for r, dep in enumerate(batch.deployments):
        lo, hi = int(batch.node_offsets[r]), int(batch.node_offsets[r + 1])
        local_tx = tx_global[(tx_global >= lo) & (tx_global < hi)] - lo
        d = make_channel(dep.topology()).resolve_slot(local_tx)
        recv.append(d.receivers + lo)
        send.append(d.senders + lo)
        coll.append(d.collided + lo)
    return (
        np.concatenate(recv),
        np.concatenate(send),
        np.concatenate(coll),
    )


def assert_delivery_matches(got, ref):
    receivers, senders, collided = ref
    assert np.array_equal(got.receivers, receivers)
    assert np.array_equal(got.senders, senders)
    assert np.array_equal(got.collided, collided)


class TestBatchCollisionAware:
    @pytest.mark.parametrize("carrier_sense", [False, True], ids=["plain", "carrier"])
    def test_matches_per_replication(self, batch, stacked, carrier_sense):
        channel = BatchCollisionAwareChannel(stacked, carrier_sense=carrier_sense)
        rng = np.random.default_rng(7)
        for _ in range(10):
            tx = _random_tx(batch, rng)
            ref = _reference_delivery(
                batch,
                lambda t: CollisionAwareChannel(t, carrier_sense=carrier_sense),
                tx,
            )
            assert_delivery_matches(channel.resolve_slot(tx), ref)

    def test_empty_slot(self, stacked):
        d = BatchCollisionAwareChannel(stacked).resolve_slot(np.array([], dtype=np.int64))
        assert d.receivers.size == 0
        assert d.senders.size == 0
        assert d.collided.size == 0

    def test_sorted_outputs(self, batch, stacked):
        channel = BatchCollisionAwareChannel(stacked)
        tx = _random_tx(batch, np.random.default_rng(3))
        d = channel.resolve_slot(tx)
        assert np.array_equal(d.receivers, np.sort(d.receivers))
        assert np.array_equal(d.collided, np.sort(d.collided))


class TestBatchCollisionFree:
    def test_matches_per_replication(self, batch, stacked):
        channel = BatchCollisionFreeChannel(stacked)
        rng = np.random.default_rng(11)
        for _ in range(10):
            tx = _random_tx(batch, rng)
            ref = _reference_delivery(batch, CollisionFreeChannel, tx)
            assert_delivery_matches(channel.resolve_slot(tx), ref)

    def test_no_collisions_ever(self, batch, stacked):
        channel = BatchCollisionFreeChannel(stacked)
        tx = _random_tx(batch, np.random.default_rng(13))
        assert channel.resolve_slot(tx).collided.size == 0

    def test_lowest_sender_wins(self, stacked):
        """CFM tie-break is lowest transmitter id, also across the
        stacked id space (each receiver's candidates stay in-block)."""
        channel = BatchCollisionFreeChannel(stacked)
        indptr, indices = stacked.indptr, stacked.indices
        # Find a node with >= 2 neighbors and transmit from both.
        node = int(np.argmax(np.diff(indptr) >= 2))
        nbrs = indices[indptr[node] : indptr[node] + 2]
        d = channel.resolve_slot(np.sort(nbrs))
        sender = d.senders[d.receivers == node]
        assert sender.size == 1 and sender[0] == nbrs.min()


class TestKernels:
    def test_gather_neighbors_matches_loop(self, stacked):
        rng = np.random.default_rng(17)
        tx = np.sort(rng.choice(stacked.n_nodes, size=40, replace=False)).astype(
            np.int64
        )
        receivers, senders = gather_neighbors(tx, stacked.indptr, stacked.indices)
        ref_r, ref_s = [], []
        for t in tx:
            nbrs = stacked.indices[stacked.indptr[t] : stacked.indptr[t + 1]]
            ref_r.extend(int(v) for v in nbrs)
            ref_s.extend([int(t)] * len(nbrs))
        assert np.array_equal(receivers, np.array(ref_r, dtype=np.int64))
        assert np.array_equal(senders, np.array(ref_s, dtype=np.int64))

    def test_gather_neighbors_empty(self, stacked):
        receivers, senders = gather_neighbors(
            np.array([], dtype=np.int64), stacked.indptr, stacked.indices
        )
        assert receivers.size == 0 and senders.size == 0

    def test_counts_and_senders_reference(self, stacked):
        rng = np.random.default_rng(19)
        tx = np.sort(rng.choice(stacked.n_nodes, size=25, replace=False)).astype(
            np.int64
        )
        counts, id_sum = counts_and_senders(
            tx, stacked.indptr, stacked.indices, stacked.n_nodes
        )
        ref_counts = np.zeros(stacked.n_nodes, dtype=np.int64)
        ref_sum = np.zeros(stacked.n_nodes, dtype=float)
        for t in tx:
            nbrs = stacked.indices[stacked.indptr[t] : stacked.indptr[t + 1]]
            ref_counts[nbrs] += 1
            ref_sum[nbrs] += t
        assert np.array_equal(counts, ref_counts)
        assert np.array_equal(id_sum, ref_sum)
