"""Deployment statistics vs geometric-random-graph theory."""

import numpy as np
import pytest

from repro.network.deployment import DiskDeployment
from repro.errors import ConfigurationError
from repro.network.stats import (
    connectivity_probability,
    deployment_stats,
    expected_isolation_probability,
)


class TestDeploymentStats:
    def test_basic_fields(self, rng):
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        stats = deployment_stats(dep)
        assert stats.n_nodes == dep.n_nodes
        assert stats.min_degree <= stats.mean_degree <= stats.max_degree
        assert 0.0 <= stats.isolated_fraction <= 1.0

    def test_mean_degree_near_rho(self, rng):
        dep = DiskDeployment.sample(rho=40, n_rings=5, rng=rng)
        stats = deployment_stats(dep)
        # Border effect bias: below nominal, but within 25%.
        assert 0.75 * 40 < stats.mean_degree < 40

    def test_dense_deployment_connected(self, rng):
        dep = DiskDeployment.sample(rho=30, n_rings=3, rng=rng)
        stats = deployment_stats(dep)
        assert stats.connected
        assert stats.source_component_fraction == 1.0
        assert stats.isolated_fraction == 0.0

    def test_reuses_supplied_topology(self, rng):
        dep = DiskDeployment.sample(rho=15, n_rings=2, rng=rng)
        topo = dep.topology()
        stats = deployment_stats(dep, topo)
        assert stats.n_edges == topo.n_edges


class TestIsolationTheory:
    def test_formula(self):
        assert expected_isolation_probability(5.0) == pytest.approx(np.exp(-5.0))

    def test_sampled_isolation_matches_poisson_theory(self):
        """At low density the empirical isolated fraction tracks exp(-rho)
        (a bit above it, because rim nodes see less area)."""
        rho = 2.0
        fracs = []
        for s in range(20):
            dep = DiskDeployment.sample(
                rho=rho,
                n_rings=4,
                rng=np.random.default_rng(s),
                population="poisson",
            )
            fracs.append(deployment_stats(dep).isolated_fraction)
        empirical = float(np.mean(fracs))
        theory = expected_isolation_probability(rho)
        assert empirical == pytest.approx(theory, rel=0.6)
        assert empirical >= theory * 0.8

    def test_invalid_rho(self):
        with pytest.raises(ConfigurationError):
            expected_isolation_probability(0.0)


class TestConnectivityProbability:
    def test_paper_densities_connected(self):
        assert connectivity_probability(rho=25, n_rings=3, trials=8, seed=0) == 1.0

    def test_sparse_networks_disconnect(self):
        assert connectivity_probability(rho=2, n_rings=3, trials=8, seed=0) < 0.5

    def test_monotone_between_extremes(self):
        lo = connectivity_probability(rho=3, n_rings=3, trials=12, seed=1)
        hi = connectivity_probability(rho=15, n_rings=3, trials=12, seed=1)
        assert hi >= lo

    def test_reproducible(self):
        a = connectivity_probability(rho=6, n_rings=3, trials=10, seed=4)
        b = connectivity_probability(rho=6, n_rings=3, trials=10, seed=4)
        assert a == b
