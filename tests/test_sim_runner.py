"""Replication runner: seeds, order, engines."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, simulate_pb, sweep_grid


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


class TestReplicate:
    def test_count_and_independence(self, cfg):
        runs = replicate(ProbabilisticRelay(0.5), cfg, 5, seed=0)
        assert len(runs) == 5
        reaches = {r.reachability for r in runs}
        assert len(reaches) > 1  # independent deployments/decisions

    def test_reproducible(self, cfg):
        a = replicate(ProbabilisticRelay(0.5), cfg, 4, seed=99)
        b = replicate(ProbabilisticRelay(0.5), cfg, 4, seed=99)
        for x, y in zip(a, b, strict=True):
            np.testing.assert_array_equal(
                x.new_informed_by_slot, y.new_informed_by_slot
            )

    def test_prefix_stability(self, cfg):
        """Adding replications never changes the existing ones."""
        short = replicate(ProbabilisticRelay(0.5), cfg, 3, seed=5)
        long = replicate(ProbabilisticRelay(0.5), cfg, 6, seed=5)
        for x, y in zip(short, long[:3], strict=True):
            np.testing.assert_array_equal(
                x.new_informed_by_slot, y.new_informed_by_slot
            )

    def test_des_engine_option(self, cfg):
        runs = replicate(ProbabilisticRelay(0.5), cfg, 2, seed=0, engine="des")
        assert len(runs) == 2

    def test_invalid_engine(self, cfg):
        with pytest.raises(ConfigurationError):
            replicate(ProbabilisticRelay(0.5), cfg, 2, seed=0, engine="warp")

    def test_invalid_replications(self, cfg):
        with pytest.raises(ConfigurationError):
            replicate(ProbabilisticRelay(0.5), cfg, 0, seed=0)


class TestSimulatePb:
    def test_uses_probability(self, cfg):
        lo = simulate_pb(cfg, 0.05, replications=4, seed=1)
        hi = simulate_pb(cfg, 0.9, replications=4, seed=1)
        assert np.mean([r.broadcasts_total for r in hi]) > np.mean(
            [r.broadcasts_total for r in lo]
        )

    def test_trace_records_p(self, cfg):
        runs = simulate_pb(cfg, 0.37, replications=2, seed=0)
        assert all(r.trace.p == 0.37 for r in runs)


class TestSweepGrid:
    RHOS = (12, 18)
    PS = (0.3, 0.8)

    def test_shape_and_reproducibility(self, cfg):
        a = sweep_grid(cfg, self.RHOS, self.PS, 3, seed=7)
        b = sweep_grid(cfg, self.RHOS, self.PS, 3, seed=7)
        assert set(a) == {(float(r), p) for r in self.RHOS for p in self.PS}
        for key, runs in a.items():
            assert len(runs) == 3
            for x, y in zip(runs, b[key], strict=True):
                np.testing.assert_array_equal(
                    x.new_informed_by_slot, y.new_informed_by_slot
                )

    def test_point_seed_matches_per_point_simulate_pb(self, cfg):
        """Pooled sweep reproduces the figure pipeline's per-point runs."""
        grid = sweep_grid(
            cfg.with_rho,
            self.RHOS,
            self.PS,
            3,
            seed=0,
            point_seed=lambda rho, i: (42, int(rho), i),
        )
        for rho in self.RHOS:
            for i, p in enumerate(self.PS):
                direct = simulate_pb(
                    cfg.with_rho(rho), p, replications=3, seed=(42, int(rho), i)
                )
                for x, y in zip(grid[(float(rho), p)], direct, strict=True):
                    np.testing.assert_array_equal(
                        x.new_informed_by_slot, y.new_informed_by_slot
                    )

    def test_reuse_deployments_shares_topology_across_p(self, cfg):
        # Poisson population makes the node count a fingerprint of the
        # sampled deployment.
        poisson = cfg.with_(population="poisson")
        grid = sweep_grid(
            poisson, self.RHOS, self.PS, 3, seed=3, reuse_deployments=True
        )
        for rho in self.RHOS:
            lo = grid[(float(rho), self.PS[0])]
            hi = grid[(float(rho), self.PS[1])]
            for x, y in zip(lo, hi, strict=True):
                # Same (rho, replication) cell -> identical deployment.
                assert x.n_field_nodes == y.n_field_nodes
        # ... while replications within one point stay independent draws.
        sizes = [r.n_field_nodes for r in grid[(float(self.RHOS[0]), self.PS[0])]]
        assert len(set(sizes)) > 1

    def test_reuse_deployments_rejects_point_seed(self, cfg):
        with pytest.raises(ConfigurationError):
            sweep_grid(
                cfg,
                self.RHOS,
                self.PS,
                2,
                seed=0,
                reuse_deployments=True,
                point_seed=lambda rho, i: (rho, i),
            )

    def test_empty_grid_rejected(self, cfg):
        with pytest.raises(ConfigurationError):
            sweep_grid(cfg, (), self.PS, 2, seed=0)
