"""Replication runner: seeds, order, engines."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, simulate_pb


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


class TestReplicate:
    def test_count_and_independence(self, cfg):
        runs = replicate(ProbabilisticRelay(0.5), cfg, 5, seed=0)
        assert len(runs) == 5
        reaches = {r.reachability for r in runs}
        assert len(reaches) > 1  # independent deployments/decisions

    def test_reproducible(self, cfg):
        a = replicate(ProbabilisticRelay(0.5), cfg, 4, seed=99)
        b = replicate(ProbabilisticRelay(0.5), cfg, 4, seed=99)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(
                x.new_informed_by_slot, y.new_informed_by_slot
            )

    def test_prefix_stability(self, cfg):
        """Adding replications never changes the existing ones."""
        short = replicate(ProbabilisticRelay(0.5), cfg, 3, seed=5)
        long = replicate(ProbabilisticRelay(0.5), cfg, 6, seed=5)
        for x, y in zip(short, long[:3]):
            np.testing.assert_array_equal(
                x.new_informed_by_slot, y.new_informed_by_slot
            )

    def test_des_engine_option(self, cfg):
        runs = replicate(ProbabilisticRelay(0.5), cfg, 2, seed=0, engine="des")
        assert len(runs) == 2

    def test_invalid_engine(self, cfg):
        with pytest.raises(ConfigurationError):
            replicate(ProbabilisticRelay(0.5), cfg, 2, seed=0, engine="warp")

    def test_invalid_replications(self, cfg):
        with pytest.raises(ConfigurationError):
            replicate(ProbabilisticRelay(0.5), cfg, 0, seed=0)


class TestSimulatePb:
    def test_uses_probability(self, cfg):
        lo = simulate_pb(cfg, 0.05, replications=4, seed=1)
        hi = simulate_pb(cfg, 0.9, replications=4, seed=1)
        assert np.mean([r.broadcasts_total for r in hi]) > np.mean(
            [r.broadcasts_total for r in lo]
        )

    def test_trace_records_p(self, cfg):
        runs = simulate_pb(cfg, 0.37, replications=2, seed=0)
        assert all(r.trace.p == 0.37 for r in runs)
