"""Query model: bounds/objectives validation and metric evaluation parity.

The load-bearing claims pinned here:

* :func:`evaluate_trace` reproduces every :data:`repro.analysis.optimizer.METRICS`
  entry bit-for-bit against :func:`sweep_metric` (the four corners of the
  paper's Figs. 4-7);
* :func:`evaluate_run` matches the :class:`RunResult` metric methods exactly;
* :func:`evaluate_runs` aggregates with the figures' mean-over-feasible
  convention.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.metrics import QUIESCENCE_PHASES
from repro.analysis.optimizer import default_probability_grid, sweep_metric
from repro.analysis.ring_model import RingModel
from repro.errors import ConfigurationError, InfeasibleConstraintError
from repro.optimize import (
    Evaluation,
    OptimizeQuery,
    better,
    evaluate_run,
    evaluate_runs,
    evaluate_trace,
)
from repro.optimize.spec import best_evaluation
from repro.sim.config import SimulationConfig
from repro.sim.runner import sweep_grid

GRID = default_probability_grid(0.05)

#: sweep_metric key -> (query, Evaluation attribute, constraint value).
PARITY_CASES = {
    "reachability_at_latency": (
        OptimizeQuery(bounds={"latency": 5.0}, objectives=("reachability",)),
        "reachability",
        5.0,
    ),
    "latency_at_reachability": (
        OptimizeQuery(bounds={"reachability": 0.72}, objectives=("latency",)),
        "latency",
        0.72,
    ),
    "energy_at_reachability": (
        OptimizeQuery(bounds={"reachability": 0.72}, objectives=("energy",)),
        "energy",
        0.72,
    ),
    "reachability_at_energy": (
        OptimizeQuery(bounds={"energy": 35.0}, objectives=("reachability",)),
        "reachability",
        35.0,
    ),
}


class TestQueryValidation:
    def test_unknown_bound(self):
        with pytest.raises(ConfigurationError, match="unknown bound"):
            OptimizeQuery(bounds={"throughput": 1.0}, objectives=("latency",))

    def test_unknown_objective(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            OptimizeQuery(objectives=("throughput",))

    def test_non_positive_bound(self):
        with pytest.raises(ConfigurationError, match="finite and > 0"):
            OptimizeQuery(bounds={"latency": 0.0}, objectives=("reachability",))
        with pytest.raises(ConfigurationError, match="finite and > 0"):
            OptimizeQuery(
                bounds={"energy": float("inf")}, objectives=("reachability",)
            )

    def test_reachability_bound_above_one(self):
        with pytest.raises(ConfigurationError, match="<= 1"):
            OptimizeQuery(bounds={"reachability": 1.5}, objectives=("latency",))

    def test_empty_objectives(self):
        with pytest.raises(ConfigurationError, match="at least one objective"):
            OptimizeQuery(bounds={"latency": 5.0})

    def test_bound_and_objective_overlap(self):
        with pytest.raises(ConfigurationError, match="both a bound"):
            OptimizeQuery(bounds={"latency": 5.0}, objectives=("latency",))

    def test_duplicate_objective(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            OptimizeQuery(objectives=("latency", "latency"))

    def test_min_feasible_range(self):
        with pytest.raises(ConfigurationError, match="min_feasible"):
            OptimizeQuery(objectives=("latency",), min_feasible=0.0)
        with pytest.raises(ConfigurationError, match="min_feasible"):
            OptimizeQuery(objectives=("latency",), min_feasible=1.2)


class TestTraceParity:
    """evaluate_trace vs sweep_metric, bit for bit."""

    @pytest.mark.parametrize("rho", [20.0, 60.0, 140.0])
    @pytest.mark.parametrize("metric", sorted(PARITY_CASES))
    def test_matches_sweep_metric(self, rho, metric):
        config = AnalysisConfig(rho=rho)
        query, attr, constraint = PARITY_CASES[metric]
        _, expected = sweep_metric(config, metric, constraint, p_grid=GRID)
        traces = RingModel(config).run_batch(GRID, max_phases=QUIESCENCE_PHASES)
        for p, trace, want in zip(GRID, traces, expected, strict=True):
            ev = evaluate_trace(trace, query)
            assert ev.p == float(p)
            if math.isnan(want):
                assert not ev.feasible
                assert ev.violation > 0.0
            else:
                assert ev.feasible
                # Exact equality: both paths read the same interpolated
                # trace methods, regardless of recursion horizon.
                assert float(getattr(ev, attr)) == want

    def test_all_metrics_read_at_same_stop(self, paper_config):
        """The three metrics of one Evaluation are mutually consistent."""
        trace = RingModel(paper_config).run_batch(
            np.array([0.3]), max_phases=QUIESCENCE_PHASES
        )[0]
        query = OptimizeQuery(
            bounds={"reachability": 0.5}, objectives=("energy",)
        )
        ev = evaluate_trace(trace, query)
        assert ev.feasible
        assert ev.latency == trace.latency_to(0.5)
        assert ev.energy == trace.broadcasts_at(ev.latency)
        assert ev.reachability == trace.reachability_after(ev.latency)

    def test_combined_bounds(self, paper_config):
        """reach >= R and latency <= L: feasible iff the crossing beats L."""
        trace = RingModel(paper_config).run_batch(
            np.array([0.4]), max_phases=QUIESCENCE_PHASES
        )[0]
        crossing = trace.latency_to(0.6)
        loose = OptimizeQuery(
            bounds={"reachability": 0.6, "latency": crossing + 1.0},
            objectives=("energy",),
        )
        ev = evaluate_trace(trace, loose)
        assert ev.feasible and ev.latency == crossing

        tight = OptimizeQuery(
            bounds={"reachability": 0.6, "latency": crossing / 2.0},
            objectives=("energy",),
        )
        ev = evaluate_trace(trace, tight)
        assert not ev.feasible
        # Metrics are read at the latency cap, not at the crossing.
        assert ev.latency == crossing / 2.0
        assert ev.violation == pytest.approx(
            0.6 - trace.reachability_after(crossing / 2.0)
        )


@pytest.fixture(scope="module")
def mc_runs():
    """A few replications at two probabilities of a small scenario."""
    config = SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=20.0, quad_nodes=32)
    )
    grid = sweep_grid(config, [config.rho], [0.3, 0.7], 4, seed=99)
    return {p: grid[(config.rho, p)] for p in (0.3, 0.7)}


class TestRunParity:
    """evaluate_run vs the RunResult metric methods."""

    def test_latency_bound_matches_reachability_after_phases(self, mc_runs):
        query = OptimizeQuery(bounds={"latency": 3.0}, objectives=("reachability",))
        for runs in mc_runs.values():
            for run in runs:
                ev = evaluate_run(run, query)
                assert ev.feasible
                assert ev.reachability == run.reachability_after_phases(3.0)

    def test_reach_bound_matches_latency_and_broadcasts_to(self, mc_runs):
        query = OptimizeQuery(bounds={"reachability": 0.6}, objectives=("latency",))
        for runs in mc_runs.values():
            for run in runs:
                ev = evaluate_run(run, query)
                if ev.feasible:
                    assert ev.latency == run.latency_phases_to(0.6)
                    assert ev.energy == run.broadcasts_to(0.6)
                else:
                    with pytest.raises(InfeasibleConstraintError):
                        run.latency_phases_to(0.6)

    def test_energy_bound_matches_reachability_within_budget(self, mc_runs):
        query = OptimizeQuery(bounds={"energy": 20.0}, objectives=("reachability",))
        for runs in mc_runs.values():
            for run in runs:
                ev = evaluate_run(run, query)
                assert ev.reachability == run.reachability_within_budget(20.0)


class TestRunsAggregation:
    def test_mean_over_feasible_runs(self, mc_runs):
        query = OptimizeQuery(bounds={"reachability": 0.6}, objectives=("latency",))
        runs = mc_runs[0.7]
        agg = evaluate_runs(runs, query, 0.7)
        per_run = [evaluate_run(r, query) for r in runs]
        feas = [e for e in per_run if e.feasible]
        assert agg.p == 0.7
        assert agg.feasible_fraction == len(feas) / len(per_run)
        if feas:
            assert agg.latency == float(np.mean([e.latency for e in feas]))
            assert agg.energy == float(np.mean([e.energy for e in feas]))

    def test_quorum_controls_feasibility(self, mc_runs):
        runs = mc_runs[0.7]
        base = OptimizeQuery(bounds={"reachability": 0.6}, objectives=("latency",))
        frac = evaluate_runs(runs, base, 0.7).feasible_fraction
        if 0.0 < frac < 1.0:
            lenient = OptimizeQuery(
                bounds={"reachability": 0.6},
                objectives=("latency",),
                min_feasible=frac,
            )
            strict = OptimizeQuery(
                bounds={"reachability": 0.6},
                objectives=("latency",),
                min_feasible=min(1.0, frac + 0.01),
            )
            assert evaluate_runs(runs, lenient, 0.7).feasible
            assert not evaluate_runs(runs, strict, 0.7).feasible

    def test_no_feasible_run_yields_nan_objectives(self, mc_runs):
        query = OptimizeQuery(
            bounds={"reachability": 0.999, "latency": 0.001},
            objectives=("energy",),
        )
        agg = evaluate_runs(mc_runs[0.3], query, 0.3)
        assert not agg.feasible
        assert agg.feasible_fraction == 0.0
        assert math.isnan(agg.latency) and math.isnan(agg.energy)
        assert agg.violation > 0.0

    def test_empty_runs_rejected(self):
        query = OptimizeQuery(objectives=("latency",))
        with pytest.raises(ConfigurationError, match="at least one run"):
            evaluate_runs([], query, 0.5)


def _ev(p, *, reach=0.9, lat=3.0, en=20.0, feasible=True, violation=0.0):
    return Evaluation(
        p=p,
        reachability=reach,
        latency=lat,
        energy=en,
        feasible=feasible,
        violation=violation,
    )


class TestBetter:
    QUERY = OptimizeQuery(objectives=("latency", "energy"))

    def test_feasible_beats_infeasible(self):
        a, b = _ev(0.9), _ev(0.1, feasible=False, violation=0.01)
        assert better(a, b, self.QUERY)
        assert not better(b, a, self.QUERY)

    def test_smaller_violation_wins_among_infeasible(self):
        a = _ev(0.5, feasible=False, violation=0.1)
        b = _ev(0.2, feasible=False, violation=0.3)
        assert better(a, b, self.QUERY)

    def test_lexicographic_objectives(self):
        primary = _ev(0.5, lat=2.0, en=50.0)
        secondary = _ev(0.4, lat=3.0, en=1.0)
        assert better(primary, secondary, self.QUERY)
        # Primary tie: the secondary objective decides.
        a, b = _ev(0.5, lat=2.0, en=10.0), _ev(0.4, lat=2.0, en=20.0)
        assert better(a, b, self.QUERY)

    def test_sense_aware(self):
        query = OptimizeQuery(objectives=("reachability",))
        assert better(_ev(0.5, reach=0.9), _ev(0.4, reach=0.8), query)

    def test_ties_break_to_lower_p(self):
        assert better(_ev(0.2), _ev(0.8), self.QUERY)
        assert not better(_ev(0.8), _ev(0.2), self.QUERY)
        lo = _ev(0.1, feasible=False, violation=0.2)
        hi = _ev(0.9, feasible=False, violation=0.2)
        assert better(lo, hi, self.QUERY)

    def test_best_evaluation_skips_infeasible(self):
        evs = [
            _ev(0.1, feasible=False, violation=0.01),
            _ev(0.6, lat=4.0),
            _ev(0.4, lat=2.0),
        ]
        best = best_evaluation(evs, self.QUERY)
        assert best is not None and best.p == 0.4
        assert best_evaluation(evs[:1], self.QUERY) is None
