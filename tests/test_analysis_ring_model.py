"""The ring-model recursion (Eq. 3-4): invariants and paper-shape checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.errors import ConfigurationError


class TestPhaseOne:
    def test_source_informs_ring_one(self, small_config):
        trace = RingModel(small_config).run(0.5, max_phases=1)
        np.testing.assert_allclose(
            trace.new_by_phase_ring[0], [small_config.rho, 0.0, 0.0]
        )

    def test_source_broadcast_counted(self, small_config):
        trace = RingModel(small_config).run(0.5, max_phases=1)
        assert trace.broadcasts_by_phase[0] == 1.0


class TestDegenerateProbabilities:
    def test_p_zero_only_ring_one(self, small_config):
        trace = RingModel(small_config).run(0.0)
        assert trace.informed_total == pytest.approx(small_config.rho)
        assert trace.broadcasts_total == pytest.approx(1.0)

    def test_p_validated(self, small_config):
        with pytest.raises(ConfigurationError):
            RingModel(small_config).run(1.5)


class TestConservation:
    @pytest.mark.parametrize("p", [0.05, 0.3, 1.0])
    def test_informed_never_exceeds_population(self, paper_config, p):
        trace = RingModel(paper_config).run(p, max_phases=120)
        assert trace.informed_total <= paper_config.n_nodes * (1 + 1e-9)

    @pytest.mark.parametrize("p", [0.1, 0.7])
    def test_per_ring_never_exceeds_ring_population(self, paper_config, p):
        trace = RingModel(paper_config).run(p, max_phases=120)
        model = RingModel(paper_config)
        ring_caps = paper_config.delta * model.partition.ring_areas
        assert np.all(trace.informed_by_ring() <= ring_caps * (1 + 1e-9))

    def test_arrivals_nonnegative(self, paper_config):
        trace = RingModel(paper_config).run(0.2, max_phases=60)
        assert np.all(trace.new_by_phase_ring >= -1e-12)

    def test_reachability_monotone_in_time(self, paper_config):
        trace = RingModel(paper_config).run(0.3, max_phases=40)
        assert np.all(np.diff(trace.cumulative_reachability) >= -1e-12)


class TestTermination:
    def test_stops_at_quiescence(self, paper_config):
        trace = RingModel(paper_config).run(0.5, max_phases=200)
        assert trace.phases < 200  # the wave dies well before the cap
        assert trace.new_by_phase[-1] < 1e-6 * paper_config.n_nodes

    def test_respects_max_phases(self, paper_config):
        trace = RingModel(paper_config).run(0.05, max_phases=4)
        assert trace.phases <= 4


class TestScalingInvariance:
    def test_density_probability_scaling_law(self):
        """The recursion depends on (p * rho) with arrivals ∝ rho.

        g(x) ∝ rho and mu sees g * p, so (rho, p) → (k*rho, p/k) rescales
        every n_j^i by k.  This is the structural reason the optimal p of
        Fig. 4(b) decays like 1/rho.
        """
        t1 = RingModel(AnalysisConfig(rho=20)).run(0.5, max_phases=10)
        t2 = RingModel(AnalysisConfig(rho=100)).run(0.1, max_phases=10)
        r1 = t1.new_by_phase_ring / 20.0
        r2 = t2.new_by_phase_ring / 100.0
        n = min(len(r1), len(r2))
        np.testing.assert_allclose(r1[:n], r2[:n], rtol=1e-8, atol=1e-10)

    def test_radius_scale_free(self):
        a = RingModel(AnalysisConfig(rho=40, radius=1.0)).run(0.3, max_phases=8)
        b = RingModel(AnalysisConfig(rho=40, radius=3.0)).run(0.3, max_phases=8)
        np.testing.assert_allclose(
            a.new_by_phase_ring, b.new_by_phase_ring, rtol=1e-9
        )


class TestPaperShapes:
    def test_reachability_bell_curve_in_p(self):
        # Fig. 4(a): at high density, reachability@5 rises then falls in p.
        model = RingModel(AnalysisConfig(rho=140))
        ps = [0.02, 0.09, 1.0]
        vals = [model.run(p, max_phases=5).reachability_after(5) for p in ps]
        assert vals[1] > vals[0] and vals[1] > vals[2]

    def test_optimal_p_decreases_with_density(self):
        grid = np.arange(0.02, 1.001, 0.02)
        opt = []
        for rho in (20, 140):
            model = RingModel(AnalysisConfig(rho=rho))
            vals = [model.run(p, max_phases=5).reachability_after(5) for p in grid]
            opt.append(grid[int(np.argmax(vals))])
        assert opt[1] < opt[0] / 3

    def test_flooding_worse_than_optimal_at_high_density(self):
        model = RingModel(AnalysisConfig(rho=140))
        flood = model.run(1.0, max_phases=5).reachability_after(5)
        tuned = model.run(0.09, max_phases=5).reachability_after(5)
        # Paper: flooding is ~0.55x the optimum at rho = 140.
        assert flood / tuned == pytest.approx(0.55, abs=0.08)


class TestMuMethodAblation:
    def test_poisson_method_runs_and_agrees_roughly(self, paper_config):
        interp = RingModel(paper_config).run(0.2, max_phases=5)
        pois = RingModel(paper_config.with_(mu_method="poisson")).run(
            0.2, max_phases=5
        )
        a = interp.reachability_after(5)
        b = pois.reachability_after(5)
        assert b == pytest.approx(a, abs=0.1)
        assert a != b  # the extensions genuinely differ


class TestRingIntegral:
    def test_constant_integrates_to_ring_area(self, paper_config):
        model = RingModel(paper_config)
        ones = np.ones(paper_config.quad_nodes)
        for j in range(1, paper_config.n_rings + 1):
            assert model.ring_integral(j, ones) == pytest.approx(
                model.partition.ring_areas[j - 1], rel=1e-12
            )


class TestInformedNeighbors:
    def test_all_rings_full_gives_rho(self, paper_config):
        # If the previous phase informed a full δ-density everywhere,
        # g(x) == rho for every interior position.
        model = RingModel(paper_config)
        full = paper_config.delta * model.partition.ring_areas
        for j in (2, 3, 4):
            g = model.informed_neighbors(j, full)
            np.testing.assert_allclose(g, paper_config.rho, rtol=1e-9)

    def test_empty_previous_phase(self, paper_config):
        model = RingModel(paper_config)
        g = model.informed_neighbors(3, np.zeros(5))
        np.testing.assert_allclose(g, 0.0)

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_reception_probability_bounded(self, p):
        cfg = AnalysisConfig(n_rings=3, rho=25, quad_nodes=16)
        model = RingModel(cfg)
        prev = np.array([cfg.rho, 5.0, 0.0])
        mu = model._reception_probability(2, p, prev)
        assert np.all((mu >= 0.0) & (mu <= 1.0))
