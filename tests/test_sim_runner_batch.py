"""Block dispatch in the runner: batching changes wall-clock, nothing else.

Covers the runner-level contracts of the replication-batched engine:
``replicate``/``sweep_grid`` results are bit-identical across block
sizes, telemetry stays neutral on the batched path, traced runs fall
back to the per-run engine (each replication reports its own event
stream), and progress accounting stays in run units.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError
from repro.obs import capture, metrics
from repro.obs.progress import SweepProgress
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import (
    DEFAULT_BLOCK_SIZE,
    _block_assignment,
    _resolve_block_size,
    replicate,
    simulate_pb,
    sweep_grid,
)

SEED = 20050113


@pytest.fixture
def cfg():
    return SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=15.0, slots=3), max_phases=40
    )


def assert_identical(a, b) -> None:
    """Field-by-field equality (``metrics`` excluded by design)."""
    assert np.array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    assert np.array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.n_field_nodes == b.n_field_nodes
    assert a.collisions == b.collisions
    assert a.total_tx == b.total_tx
    assert a.total_rx == b.total_rx
    assert a.seed_entropy == b.seed_entropy
    assert np.array_equal(a.informed_mask, b.informed_mask)
    assert np.array_equal(a.trace.new_by_phase_ring, b.trace.new_by_phase_ring)


def assert_runs_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b, strict=True):
        assert_identical(x, y)


class TestReplicateBlockSizes:
    @pytest.mark.parametrize("block_size", [None, 1, 2, 3, 100])
    def test_block_size_never_changes_results(self, cfg, block_size):
        baseline = replicate(ProbabilisticRelay(0.5), cfg, 5, seed=9, block_size=0)
        batched = replicate(
            ProbabilisticRelay(0.5), cfg, 5, seed=9, block_size=block_size
        )
        assert_runs_identical(baseline, batched)

    def test_negative_block_size_rejected(self, cfg):
        with pytest.raises(ConfigurationError):
            replicate(ProbabilisticRelay(0.5), cfg, 2, seed=9, block_size=-1)

    def test_des_engine_ignores_block_size(self, cfg):
        a = replicate(ProbabilisticRelay(0.5), cfg, 2, seed=9, engine="des")
        b = replicate(
            ProbabilisticRelay(0.5), cfg, 2, seed=9, engine="des", block_size=2
        )
        assert_runs_identical(a, b)

    def test_simulate_pb_forwards_block_size(self, cfg):
        a = simulate_pb(cfg, 0.5, 4, seed=9, block_size=0)
        b = simulate_pb(cfg, 0.5, 4, seed=9, block_size=4)
        assert_runs_identical(a, b)


class TestSweepGridBlocks:
    def test_sweep_identical_across_block_sizes(self, cfg):
        kw = dict(replications=3, seed=5)
        a = sweep_grid(cfg, [15.0], [0.4, 0.8], block_size=0, **kw)
        b = sweep_grid(cfg, [15.0], [0.4, 0.8], block_size=2, **kw)
        assert a.keys() == b.keys()
        for point in a:
            assert_runs_identical(a[point], b[point])

    def test_reuse_deployments_identical_across_block_sizes(self, cfg):
        kw = dict(replications=3, seed=5, reuse_deployments=True)
        a = sweep_grid(cfg, [15.0], [0.4, 0.8], block_size=0, **kw)
        b = sweep_grid(cfg, [15.0], [0.4, 0.8], block_size=3, **kw)
        assert a.keys() == b.keys()
        for point in a:
            assert_runs_identical(a[point], b[point])


class TestTelemetryNeutrality:
    def test_metrics_on_off_bit_identical(self, cfg):
        """Satellite: metric collection must not perturb the batched
        path (same RNG consumption, same results)."""
        plain = replicate(ProbabilisticRelay(0.6), cfg, 4, seed=SEED, block_size=4)
        with metrics.collect():
            collected = replicate(
                ProbabilisticRelay(0.6), cfg, 4, seed=SEED, block_size=4
            )
        assert_runs_identical(plain, collected)
        assert plain[0].metrics is None
        assert collected[0].metrics

    def test_tracer_falls_back_to_per_run_engine(self, cfg):
        """With a tracer attached the runner must route every
        replication through the per-run engine so each run reports its
        own event stream — and the results stay bit-identical to the
        batched execution of the same seeds."""
        batched = replicate(ProbabilisticRelay(0.6), cfg, 3, seed=SEED, block_size=3)
        with capture() as buf:
            traced = replicate(
                ProbabilisticRelay(0.6), cfg, 3, seed=SEED, block_size=3
            )
        assert len(buf) > 0, "per-run fallback should have emitted events"
        assert_runs_identical(batched, traced)

    def test_tracer_forces_per_run_resolution(self):
        with capture():
            assert _resolve_block_size(8, "vector") == 0
        assert _resolve_block_size(8, "vector") == 8


class TestBlockMachinery:
    def test_resolve_block_size(self):
        assert _resolve_block_size(None, "vector") == DEFAULT_BLOCK_SIZE
        assert _resolve_block_size(None, "des") == 0
        assert _resolve_block_size(0, "vector") == 0
        assert _resolve_block_size(1, "vector") == 0
        assert _resolve_block_size(5, "vector") == 5
        with pytest.raises(ConfigurationError):
            _resolve_block_size(-2, "vector")

    def test_block_assignment_respects_groups_and_size(self):
        # Two grid points of three replications, block_size=2: blocks
        # never span a group boundary and never exceed the size.
        groups = [0, 0, 0, 1, 1, 1]
        blocks = _block_assignment(groups, 2)
        assert len(blocks) == 6
        by_block: dict[int, list[int]] = {}
        for i, b in enumerate(blocks):
            by_block.setdefault(b, []).append(i)
        for members in by_block.values():
            assert len(members) <= 2
            assert len({groups[i] for i in members}) == 1
            assert members == list(range(members[0], members[0] + len(members)))

    def test_block_assignment_single_group(self):
        blocks = _block_assignment([0] * 5, 32)
        assert blocks == [blocks[0]] * 5


class TestProgressRunUnits:
    def test_update_blocks_counts_runs(self):
        """Satellite: ETA math sees runs, not blocks — a 2-block update
        covering 7 runs advances the counter by 7."""

        class _Run:
            collisions = 3
            reachability = 0.5

        out = io.StringIO()
        prog = SweepProgress(10, "t", min_interval=0.0, stream=out)
        prog.update_blocks(1, 3, [[_Run(), _Run(), _Run(), _Run()]])
        prog.update_blocks(2, 3, [[_Run(), _Run(), _Run()]])
        lines = out.getvalue().strip().splitlines()
        assert "4/10 runs" in lines[0]
        assert "7/10 runs" in lines[1]
        # Per-run statistics aggregate across all block members.
        assert "collisions/run 3.0" in lines[1]

    def test_progress_smoke_on_batched_replicate(self, cfg, capsys):
        replicate(
            ProbabilisticRelay(0.5), cfg, 4, seed=9, block_size=2, progress=True
        )
        err = capsys.readouterr().err
        assert "4/4 runs" in err
