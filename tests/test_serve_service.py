"""QueryService: coalescing, batching, timeouts, bit-identity."""

import asyncio
import time

import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError, ServeError
from repro.optimize.spec import evaluate_runs
from repro.protocols.pbcast import ProbabilisticRelay
from repro.serve import QueryService, parse_request
from repro.serve.compute import execute_tasks
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore

BOUND = {
    "kind": "bound",
    "rho": 15.0,
    "p": 0.5,
    "seed": 7,
    "replications": 3,
    "bounds": {"latency": 30.0},
    "n_rings": 3,
}

OBJECTIVE = {
    "kind": "objective",
    "rho": 15.0,
    "ps": [0.3, 0.5],
    "seed": 7,
    "replications": 2,
    "bounds": {"latency": 30.0},
    "n_rings": 3,
}


class CountingExecute:
    """Wraps the real executor, counting calls and their batch sizes."""

    def __init__(self, delay: float = 0.0, fail_times: int = 0):
        self.calls: list[list[str]] = []
        self.delay = delay
        self.fail_times = fail_times

    def __call__(self, tasks, keys, store, *, workers=1, retries=1, backoff=0.05):
        self.calls.append(list(keys))
        if self.delay:
            time.sleep(self.delay)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("injected batch failure")
        return execute_tasks(
            tasks, keys, store, workers=workers, retries=retries, backoff=backoff
        )


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("store", DiskStore(tmp_path / "store"))
    store = kwargs.pop("store")
    return QueryService(store, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_k_identical_queries_one_scheduler_run(self, tmp_path):
        counting = CountingExecute()
        service = make_service(tmp_path, execute=counting)
        k = 5

        async def _go():
            async with service:
                return await asyncio.gather(
                    *(service.query(BOUND) for _ in range(k))
                )

        responses = run(_go())
        assert len(counting.calls) == 1  # the acceptance criterion
        assert len(counting.calls[0]) == BOUND["replications"]
        assert service.stats.dispatched == BOUND["replications"]
        assert service.stats.coalesced == (k - 1) * BOUND["replications"]
        assert service.stats.coalescing_ratio() == pytest.approx(k)
        first = responses[0]
        for other in responses[1:]:
            assert other == first

    def test_distinct_queries_batch_in_one_tick(self, tmp_path):
        counting = CountingExecute()
        service = make_service(tmp_path, execute=counting)
        other = dict(BOUND, p=0.3, seed=11)

        async def _go():
            async with service:
                await asyncio.gather(service.query(BOUND), service.query(other))

        run(_go())
        # Both queries' misses drained in ONE per-tick batch.
        assert len(counting.calls) == 1
        assert len(counting.calls[0]) == 2 * BOUND["replications"]
        assert service.stats.batches == 1

    def test_sequential_queries_hit_memory(self, tmp_path):
        counting = CountingExecute()
        service = make_service(tmp_path, execute=counting)

        async def _go():
            async with service:
                first = await service.query(BOUND)
                second = await service.query(BOUND)
                return first, second

        first, second = run(_go())
        assert first == second
        assert len(counting.calls) == 1  # warm pass never reached compute
        assert service.stats.memory_hits == BOUND["replications"]

    def test_shared_seeds_coalesce_across_kinds(self, tmp_path):
        """CRN seed sharing: the objective's p=0.5 slice reuses BOUND's."""
        counting = CountingExecute()
        service = make_service(tmp_path, execute=counting)
        objective = dict(OBJECTIVE, replications=3)

        async def _go():
            async with service:
                await service.query(BOUND)
                await service.query(objective)

        run(_go())
        total_keys = sum(len(keys) for keys in counting.calls)
        # 3 (bound) + 3 (objective p=0.3); the p=0.5 slice was warm.
        assert total_keys == 6
        assert service.stats.memory_hits == 3


class TestTimeoutsAndRetries:
    def test_timeout_then_retry_succeeds(self, tmp_path):
        counting = CountingExecute(delay=0.3)
        service = make_service(
            tmp_path, execute=counting, timeout=0.1, retries=3, backoff=0.01
        )

        async def _go():
            async with service:
                return await service.query(BOUND)

        response = run(_go())
        assert response["id"]
        assert service.stats.timeouts >= 1
        assert service.stats.retries >= 1
        # Retries re-joined the surviving in-flight future: one run.
        assert len(counting.calls) == 1

    def test_exhausted_retries_raise_serve_error(self, tmp_path):
        counting = CountingExecute(delay=0.5)
        service = make_service(
            tmp_path, execute=counting, timeout=0.05, retries=0
        )

        async def _go():
            async with service:
                with pytest.raises(ServeError, match="timed out after 1 attempt"):
                    await service.query(BOUND)

        run(_go())
        assert service.stats.timeouts == 1

    def test_batch_failure_propagates_then_retry_recovers(self, tmp_path):
        counting = CountingExecute(fail_times=1)
        service = make_service(
            tmp_path, execute=counting, retries=0, timeout=5.0
        )

        async def _go():
            async with service:
                with pytest.raises(RuntimeError, match="injected batch failure"):
                    await service.query(BOUND)
                # The failed keys left the single-flight map; a fresh
                # query schedules a fresh (now succeeding) batch.
                return await service.query(BOUND)

        response = run(_go())
        assert response["feasible"] in (True, False)
        assert len(counting.calls) == 2

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="timeout"):
            make_service(tmp_path, timeout=0.0)
        with pytest.raises(ConfigurationError, match="retries"):
            make_service(tmp_path, retries=-1)

    def test_closed_service_rejects_queries(self, tmp_path):
        service = make_service(tmp_path)

        async def _go():
            async with service:
                pass
            with pytest.raises(ServeError, match="closed"):
                await service.query(BOUND)

        run(_go())


class TestResponses:
    def test_bound_response_shape(self, tmp_path):
        service = make_service(tmp_path)

        async def _go():
            async with service:
                return await service.query(BOUND)

        response = run(_go())
        assert response["kind"] == "bound"
        assert response["rho"] == 15.0
        assert response["tasks"] == BOUND["replications"]
        assert len(response["evaluations"]) == 1
        assert response["best"] == response["evaluations"][0]
        assert isinstance(response["feasible"], bool)

    def test_objective_response_evaluates_all_ps(self, tmp_path):
        service = make_service(tmp_path)

        async def _go():
            async with service:
                return await service.query(OBJECTIVE)

        response = run(_go())
        assert response["kind"] == "objective"
        assert [ev["p"] for ev in response["evaluations"]] == [0.3, 0.5]
        if response["feasible"]:
            assert response["best"]["feasible"]

    def test_answers_bit_identical_to_offline_run(self, tmp_path):
        """The serving stack changes nothing about the numbers."""
        service = make_service(tmp_path)

        async def _go():
            async with service:
                return await service.query(BOUND)

        response = run(_go())
        request = parse_request(BOUND)
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15.0))
        offline = replicate(
            ProbabilisticRelay(0.5), cfg, BOUND["replications"], seed=7
        )
        expected = evaluate_runs(offline, request.query(), 0.5)
        got = response["evaluations"][0]
        assert got["reachability"] == expected.reachability
        assert got["latency"] == expected.latency
        assert got["energy"] == expected.energy
        assert got["feasible"] == expected.feasible

    def test_accepts_json_string_requests(self, tmp_path):
        import json

        service = make_service(tmp_path)

        async def _go():
            async with service:
                return await service.query(json.dumps(BOUND))

        assert run(_go())["kind"] == "bound"

    def test_storeless_service_still_coalesces(self, tmp_path):
        counting = CountingExecute()
        service = QueryService(None, execute=counting)

        async def _go():
            async with service:
                return await asyncio.gather(
                    service.query(BOUND), service.query(BOUND)
                )

        a, b = run(_go())
        assert a == b
        assert len(counting.calls) == 1
        assert service.stats.memory_hits == 0
