"""The reachability/energy trade-off curve and its Pareto frontier."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import optimal_probability, tradeoff_curve

GRID = np.arange(0.05, 1.001, 0.05)


@pytest.fixture
def curve():
    return tradeoff_curve(AnalysisConfig(n_rings=4, rho=40, quad_nodes=48), 5, p_grid=GRID)


class TestCurve:
    def test_shapes(self, curve):
        assert curve.p_grid.shape == curve.reachability.shape == curve.broadcasts.shape
        assert curve.efficient.dtype == bool

    def test_values_sane(self, curve):
        assert np.all((curve.reachability >= 0) & (curve.reachability <= 1))
        assert np.all(curve.broadcasts >= 1.0)  # the source always transmits

    def test_energy_monotone_in_p(self, curve):
        # Within a fixed horizon, more relaying probability = more sends.
        assert np.all(np.diff(curve.broadcasts) >= -1e-9)


class TestFrontier:
    def test_frontier_nonempty_and_sorted(self, curve):
        p, r, e = curve.frontier()
        assert len(p) >= 1
        assert np.all(np.diff(e) >= 0)
        # Along a Pareto frontier, more energy must buy more reachability.
        assert np.all(np.diff(r) >= -1e-12)

    def test_no_point_dominates_a_frontier_point(self, curve):
        p, r, e = curve.frontier()
        for ri, ei in zip(r, e, strict=True):
            dominates = (
                (curve.reachability >= ri)
                & (curve.broadcasts <= ei)
                & ((curve.reachability > ri) | (curve.broadcasts < ei))
            )
            assert not dominates.any()

    def test_endpoints_relate_to_paper_metrics(self):
        """Metric 1's optimum is the max-reachability end of the frontier."""
        cfg = AnalysisConfig(n_rings=4, rho=40, quad_nodes=48)
        curve = tradeoff_curve(cfg, 5, p_grid=GRID)
        metric1 = optimal_probability(
            cfg, "reachability_at_latency", 5, p_grid=GRID
        )
        p, r, e = curve.frontier()
        assert r[-1] == pytest.approx(metric1.value, abs=1e-9)

    def test_dominated_points_exist(self, curve):
        # Flooding at a 5-phase horizon is dominated at this density.
        assert not curve.efficient.all()
