"""Cross-cutting simulation invariants (hypothesis over random scenarios)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.config import AnalysisConfig
from repro.network.deployment import DiskDeployment
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast


@st.composite
def scenarios(draw):
    rho = draw(st.floats(min_value=5.0, max_value=30.0))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    channel = draw(st.sampled_from(["cam", "cfm"]))
    cfg = SimulationConfig(
        analysis=AnalysisConfig(n_rings=2, rho=rho, quad_nodes=8), channel=channel
    )
    return cfg, p, seed


class TestEngineInvariants:
    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_reachability_bounded_by_component(self, scenario):
        """No protocol can inform nodes the graph cannot reach."""
        cfg, p, seed = scenario
        rng = np.random.default_rng(seed)
        dep = DiskDeployment.sample(rho=cfg.rho, n_rings=cfg.n_rings, rng=rng)
        res = run_broadcast(ProbabilisticRelay(p), cfg, seed, deployment=dep)
        component = dep.topology().reachable_from(dep.source)
        ceiling = (component.sum() - 1) / dep.n_field_nodes
        assert res.reachability <= ceiling + 1e-12

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_broadcasts_bounded_by_informed(self, scenario):
        """Each node relays at most once, so M <= informed + source."""
        cfg, p, seed = scenario
        res = run_broadcast(ProbabilisticRelay(p), cfg, seed)
        assert res.broadcasts_total <= res.new_informed_by_slot.sum() + 1

    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_mask_and_series_agree(self, scenario):
        cfg, p, seed = scenario
        res = run_broadcast(ProbabilisticRelay(p), cfg, seed)
        assert res.informed_mask.sum() == res.new_informed_by_slot.sum() + 1

    @given(scenario=scenarios())
    @settings(max_examples=30, deadline=None)
    def test_receptions_at_least_first_informs(self, scenario):
        """Every newly informed node had >= 1 successful reception."""
        cfg, p, seed = scenario
        res = run_broadcast(ProbabilisticRelay(p), cfg, seed)
        assert res.total_rx >= res.new_informed_by_slot.sum()

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_cfm_flooding_exactly_fills_component(self, seed):
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=2, rho=10, quad_nodes=8), channel="cfm"
        )
        rng = np.random.default_rng(seed)
        dep = DiskDeployment.sample(rho=10, n_rings=2, rng=rng)
        res = run_broadcast(SimpleFlooding(), cfg, seed, deployment=dep)
        component = dep.topology().reachable_from(dep.source)
        assert res.informed_mask.sum() == component.sum()
