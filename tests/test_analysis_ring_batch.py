"""Batched-p recursion (`run_batch`) against the scalar `run` path.

The optimizer and figure sweeps ride on `run_batch`; these tests pin it
to the scalar recursion point-for-point.  Both paths use the same
multiply-then-pairwise-sum reduction, so agreement is expected to be
bitwise, and the assertions use a tolerance far tighter than anything a
sweep could absorb.
"""

import numpy as np
import pytest

from repro.analysis.carrier_model import CarrierRingModel
from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.errors import ConfigurationError

TOL = 1e-12


def assert_traces_match(batch_trace, scalar_trace):
    assert batch_trace.p == scalar_trace.p
    assert batch_trace.new_by_phase_ring.shape == scalar_trace.new_by_phase_ring.shape
    np.testing.assert_allclose(
        batch_trace.new_by_phase_ring,
        scalar_trace.new_by_phase_ring,
        rtol=0.0,
        atol=TOL,
    )
    np.testing.assert_allclose(
        batch_trace.broadcasts_by_phase,
        scalar_trace.broadcasts_by_phase,
        rtol=0.0,
        atol=TOL,
    )


class TestRunBatchEquivalence:
    GRID = np.arange(0.05, 1.001, 0.05)

    @pytest.mark.parametrize("rho", [20.0, 60.0, 140.0])
    def test_matches_scalar_run_quiescent(self, rho):
        model = RingModel(AnalysisConfig(n_rings=5, rho=rho))
        traces = model.run_batch(self.GRID)
        assert len(traces) == self.GRID.size
        for p, trace in zip(self.GRID, traces, strict=True):
            assert_traces_match(trace, model.run(float(p)))

    def test_matches_scalar_run_truncated(self, small_config):
        model = RingModel(small_config)
        for p, trace in zip(self.GRID, model.run_batch(self.GRID, max_phases=4), strict=True):
            assert_traces_match(trace, model.run(float(p), max_phases=4))

    def test_carrier_model_matches_scalar(self):
        model = CarrierRingModel(AnalysisConfig(n_rings=5, rho=60.0))
        grid = self.GRID[::3]
        for p, trace in zip(grid, model.run_batch(grid, max_phases=60), strict=True):
            assert_traces_match(trace, model.run(float(p), max_phases=60))

    def test_single_element_batch(self, small_config):
        model = RingModel(small_config)
        (trace,) = model.run_batch([0.4])
        assert_traces_match(trace, model.run(0.4))

    def test_custom_initial_informed(self, small_config):
        model = RingModel(small_config)
        initial = np.array([5.0, 2.0, 0.0])
        traces = model.run_batch([0.2, 0.9], initial_informed=initial)
        for p, trace in zip((0.2, 0.9), traces, strict=True):
            assert_traces_match(
                trace, model.run(p, initial_informed=initial)
            )

    def test_degenerate_probabilities(self, small_config):
        model = RingModel(small_config)
        for p, trace in zip((0.0, 1.0), model.run_batch([0.0, 1.0]), strict=True):
            assert_traces_match(trace, model.run(p))


class TestRunBatchValidation:
    def test_rejects_out_of_range(self, small_config):
        with pytest.raises(ConfigurationError):
            RingModel(small_config).run_batch([0.2, 1.5])

    def test_rejects_empty(self, small_config):
        with pytest.raises(ConfigurationError):
            RingModel(small_config).run_batch([])

    def test_rejects_2d(self, small_config):
        with pytest.raises(ConfigurationError):
            RingModel(small_config).run_batch([[0.2, 0.4]])

    def test_rejects_nan(self, small_config):
        with pytest.raises(ConfigurationError):
            RingModel(small_config).run_batch([0.2, float("nan")])
