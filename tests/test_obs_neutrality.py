"""Telemetry must never change results.

Every engine/channel combination is run twice on identical seeds — once
with tracing (and metric collection) active, once with everything off —
and the two :class:`~repro.sim.results.RunResult`\\ s must be identical
bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import capture, metrics
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast

SEED = 20050113


def _config(channel: str, carrier_sense: bool) -> SimulationConfig:
    return SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3),
        channel=channel,
        carrier_sense=carrier_sense,
        max_phases=40,
    )


def _run(engine: str, config: SimulationConfig):
    if engine == "vector":
        return run_broadcast(ProbabilisticRelay(0.6), config, SEED)
    return DesBroadcastSimulation(ProbabilisticRelay(0.6), config, SEED).run()


def assert_identical(a, b) -> None:
    """Field-by-field equality (``metrics`` excluded by design)."""
    assert np.array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    assert np.array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.n_field_nodes == b.n_field_nodes
    assert a.collisions == b.collisions
    assert a.total_tx == b.total_tx
    assert a.total_rx == b.total_rx
    assert a.seed_entropy == b.seed_entropy
    assert np.array_equal(a.informed_mask, b.informed_mask)
    assert np.array_equal(
        a.trace.new_by_phase_ring, b.trace.new_by_phase_ring
    )
    assert np.array_equal(
        a.trace.broadcasts_by_phase, b.trace.broadcasts_by_phase
    )


CASES = [
    ("vector", "cfm", False),
    ("vector", "cam", False),
    ("vector", "cam", True),
    ("des", "cam", False),
    ("des", "cam", True),
]


@pytest.mark.parametrize(
    "engine,channel,carrier_sense",
    CASES,
    ids=[f"{e}-{c}{'-cs' if s else ''}" for e, c, s in CASES],
)
def test_tracing_is_neutral(engine, channel, carrier_sense):
    config = _config(channel, carrier_sense)
    plain = _run(engine, config)
    with capture() as buf:
        traced = _run(engine, config)
    assert len(buf) > 0, "tracing was on but no events were emitted"
    assert traced.metrics is None  # tracing alone must not snapshot metrics
    assert_identical(plain, traced)


@pytest.mark.parametrize(
    "engine,channel,carrier_sense",
    CASES,
    ids=[f"{e}-{c}{'-cs' if s else ''}" for e, c, s in CASES],
)
def test_metrics_collection_is_neutral(engine, channel, carrier_sense):
    config = _config(channel, carrier_sense)
    plain = _run(engine, config)
    with metrics.collect():
        collected = _run(engine, config)
    assert collected.metrics  # snapshot attached...
    assert_identical(plain, collected)  # ...but the physics unchanged


def test_tracing_and_metrics_together_are_neutral():
    config = _config("cam", False)
    plain = _run("vector", config)
    with capture(), metrics.collect():
        both = _run("vector", config)
    assert_identical(plain, both)
