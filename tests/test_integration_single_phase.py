"""Single-phase validation of Eq. (4): analysis vs direct Monte Carlo.

The figure-level comparisons accumulate modeling error over many
phases; this test isolates *one* phase transition.  Given an informed
population matching the recursion's state after phase 1 (ring 1 full,
everyone else uninformed), the expected number of newly informed nodes
per ring in phase 2 is computed two ways:

* analytically — one step of :class:`RingModel` (exactly Eq. 3-4);
* empirically — many Poisson deployments where ring-1 nodes transmit
  with probability ``p`` into random slots, resolved by the CAM channel.

The phase-1 state is the one configuration where the recursion's
within-ring-uniformity assumption holds *exactly* (the informed set is
all of ring 1), so analysis and simulation must agree up to Monte-Carlo
error and the real-K-extension approximation.
"""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.models.cam import CollisionAwareChannel
from repro.network.deployment import DiskDeployment


def simulate_phase_two(cfg: AnalysisConfig, p: float, seed: int, reps: int):
    """Mean newly-informed-per-ring during phase 2, by direct simulation."""
    root = np.random.SeedSequence(seed)
    totals = np.zeros(cfg.n_rings)
    for child in root.spawn(reps):
        rng = np.random.default_rng(child)
        dep = DiskDeployment.sample(
            rho=cfg.rho, n_rings=cfg.n_rings, rng=rng, population="poisson"
        )
        topo = dep.topology()
        channel = CollisionAwareChannel(topo)
        rings = dep.ring_indices()
        informed = rings == 1  # the state after phase 1 (source's disk)
        informed[dep.source] = True
        candidates = np.flatnonzero(informed)
        candidates = candidates[candidates != dep.source]
        will = rng.random(len(candidates)) < p
        tx_nodes = candidates[will]
        slots = rng.integers(0, cfg.slots, size=len(tx_nodes))
        newly = np.zeros(topo.n_nodes, dtype=bool)
        for t in range(cfg.slots):
            d = channel.resolve_slot(tx_nodes[slots == t])
            fresh = d.receivers[~informed[d.receivers] & ~newly[d.receivers]]
            newly[fresh] = True
        totals += np.bincount(rings[newly], minlength=cfg.n_rings + 1)[1:]
    return totals / reps


@pytest.mark.parametrize("p", [0.1, 0.3, 0.8])
def test_phase_two_poisson_method_is_exact(p):
    """With the Poisson real-K extension, one step of Eq. (4) matches
    direct simulation to Monte-Carlo noise (<5% here, ~0.5% at high
    rep counts): transmitter counts in a Poisson field ARE Poisson, so
    the mixture model is the exact per-node reception probability."""
    cfg = AnalysisConfig(n_rings=3, rho=25, quad_nodes=64, mu_method="poisson")
    trace = RingModel(cfg).run(p, max_phases=2)
    predicted = trace.new_by_phase_ring[1]

    measured = simulate_phase_two(cfg, p, seed=int(p * 1000), reps=120)

    # Ring 1 is fully informed, so phase 2 adds nothing there.
    assert predicted[0] == pytest.approx(0.0, abs=1e-9)
    assert measured[0] == pytest.approx(0.0, abs=1e-9)
    # Ring 2 gets the bulk; exact model => only MC noise remains
    # (the per-run arrival count is noisy at small p, hence 6%/120 reps).
    assert measured[1] == pytest.approx(predicted[1], rel=0.06)
    # Ring 3 is out of range of ring 1: both ~0.
    assert predicted[2] == pytest.approx(0.0, abs=1e-9)
    assert measured[2] == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("p", [0.1, 0.3])
def test_phase_two_interpolation_overpredicts(p):
    """The paper's plug-the-expectation convention, mu(E[K], s), is
    optimistic by Jensen's inequality (mu is concave over the relevant
    range): 15-30% at one phase here.  This single-phase bias is the
    root of the analysis-vs-simulation plateau gap (paper: 0.72 vs
    0.63; ours: 0.836 vs 0.62) — see docs/theory.md section 6."""
    cfg = AnalysisConfig(n_rings=3, rho=25, quad_nodes=64)
    predicted = RingModel(cfg).run(p, max_phases=2).new_by_phase_ring[1]
    measured = simulate_phase_two(cfg, p, seed=int(p * 1000), reps=60)
    assert predicted[1] > measured[1] * 1.05  # systematically optimistic
    assert predicted[1] < measured[1] * 1.6  # but in the right ballpark


def test_phase_two_scaling_with_p():
    """The single-phase transition inherits the bell shape: mid p beats
    both extremes at high contention."""
    cfg = AnalysisConfig(n_rings=3, rho=60, quad_nodes=64)
    gains = {
        p: RingModel(cfg).run(p, max_phases=2).new_by_phase_ring[1].sum()
        for p in (0.02, 0.2, 1.0)
    }
    assert gains[0.2] > gains[0.02]
    assert gains[0.2] > gains[1.0]
