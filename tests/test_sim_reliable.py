"""Reliable (retransmit-until-covered) flooding over CAM."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.refined import DensityAwareCostModel
from repro.network.deployment import DiskDeployment
from repro.sim.config import SimulationConfig
from repro.sim.reliable import ReliableFloodingSimulation


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=12))


def line_deployment(n=4, spacing=0.9, n_rings=4):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return DiskDeployment(positions=pos, radius=1.0, n_rings=n_rings)


class TestBasics:
    def test_full_reachability_on_connected_deployment(self, cfg, rng):
        dep = DiskDeployment.sample(rho=12, n_rings=3, rng=rng)
        sim = ReliableFloodingSimulation(cfg, 0, deployment=dep)
        res = sim.run()
        reachable = dep.topology().reachable_from(dep.source)
        assert res.reachability == pytest.approx(
            (reachable.sum() - 1) / dep.n_field_nodes
        )

    def test_line_needs_no_retries(self, cfg):
        # Hop-by-hop chain: one clean transmission per node suffices.
        sim = ReliableFloodingSimulation(cfg, 0, deployment=line_deployment())
        res = sim.run()
        assert res.reachability == 1.0
        assert sim.mean_attempts() == pytest.approx(1.0)
        assert sim.capped_nodes == 0

    def test_ack_traffic_counted(self, cfg):
        sim = ReliableFloodingSimulation(cfg, 1)
        sim.run()
        # Every transmission is acknowledged by informed neighbors:
        # in a connected run there must be plenty of ACK packets.
        assert sim.ack_packets > sim.attempts_per_node.sum()

    def test_deterministic(self, cfg):
        a = ReliableFloodingSimulation(cfg, 9).run()
        b = ReliableFloodingSimulation(cfg, 9).run()
        assert a.broadcasts_total == b.broadcasts_total
        np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)


class TestRetryBehaviour:
    def test_retries_happen_under_contention(self):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))
        sim = ReliableFloodingSimulation(cfg, 2)
        sim.run()
        assert sim.mean_attempts() > 1.0

    def test_attempts_track_refined_model_at_low_density(self):
        """DESIGN.md ablation 5 / the paper's future-work validation: the
        ring-derived retry factor predicts measured retransmissions at
        low density (within a factor of 2)."""
        acfg = AnalysisConfig(n_rings=3, rho=10)
        predicted = DensityAwareCostModel.for_density(acfg).expected_attempts
        sims = [
            ReliableFloodingSimulation(SimulationConfig(analysis=acfg), s)
            for s in range(4)
        ]
        for s in sims:
            s.run()
        measured = np.mean([s.mean_attempts() for s in sims])
        assert measured == pytest.approx(predicted, rel=1.0)
        assert measured > 1.2  # genuinely retrying

    def test_cap_respected(self):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))
        sim = ReliableFloodingSimulation(cfg, 3, max_attempts=2)
        sim.run()
        assert sim.attempts_per_node.max() <= 2

    def test_costlier_than_single_shot_flooding(self):
        from repro.protocols.pbcast import SimpleFlooding
        from repro.sim.desimpl import DesBroadcastSimulation

        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))
        once = DesBroadcastSimulation(SimpleFlooding(), cfg, 4).run()
        reliable = ReliableFloodingSimulation(cfg, 4).run()
        assert reliable.broadcasts_total > once.broadcasts_total
        assert reliable.reachability >= once.reachability
