"""Experiment registry, parameters, figure generation and the CLI."""

import numpy as np
import pytest

from repro.experiments.figures import (
    FIGURES,
    analysis_sweep,
    clear_caches,
    generate_figure,
    simulation_grid,
)
from repro.experiments.params import ExperimentScale, PaperParams
from repro.experiments.runall import main as runall_main


class TestParams:
    def test_paper_constants(self):
        assert PaperParams.N_RINGS == 5
        assert PaperParams.SLOTS == 3
        assert PaperParams.RHO_GRID == (20, 40, 60, 80, 100, 120, 140)
        assert PaperParams.REPLICATIONS == 30

    def test_full_scale_grids(self):
        scale = ExperimentScale.full()
        assert len(scale.analysis_p_grid) == 100
        assert len(scale.sim_p_grid) == 20
        assert scale.analysis_p_grid[-1] == pytest.approx(1.0)

    def test_quick_scale_cheaper(self):
        q, f = ExperimentScale.quick(), ExperimentScale.full()
        assert len(q.rho_grid) < len(f.rho_grid)
        assert q.replications < f.replications

    def test_configs(self):
        scale = ExperimentScale.quick()
        cfg = scale.analysis_config(80)
        assert cfg.rho == 80 and cfg.n_rings == 5
        sim = scale.simulation_config(80)
        assert sim.analysis.rho == 80


class TestRegistry:
    def test_all_paper_figures_registered(self):
        expected = (
            {f"fig{n}{panel}" for n in (4, 5, 6, 7) for panel in "ab"}
            | {f"fig{n}{panel}" for n in (8, 9, 10, 11) for panel in "ab"}
            | {"fig12"}
        )
        assert set(FIGURES) == expected

    def test_unknown_figure(self, tiny_scale):
        with pytest.raises(KeyError, match="unknown figure"):
            generate_figure("fig99", tiny_scale)


class TestAnalysisSweepCache:
    def test_cached_identity(self, tiny_scale):
        a = analysis_sweep(tiny_scale, 20)
        b = analysis_sweep(tiny_scale, 20)
        assert a is b

    def test_contains_all_metrics(self, tiny_scale):
        sweep = analysis_sweep(tiny_scale, 20)
        assert set(sweep) == {
            "p",
            "reach_at_latency",
            "latency_at_reach",
            "energy_at_reach",
            "reach_at_energy",
        }

    def test_clear(self, tiny_scale):
        a = analysis_sweep(tiny_scale, 20)
        clear_caches()
        b = analysis_sweep(tiny_scale, 20)
        assert a is not b


class TestAnalysisFigures:
    def test_fig4b_paper_shape(self, tiny_scale):
        res = generate_figure("fig4b", tiny_scale)
        opt = res.series_array("optimal_p")
        assert opt[-1] < opt[0]  # optimal p decreases with density
        reach = res.series_array("reachability")
        assert reach.std() < 0.05  # the plateau

    def test_fig5b_duality_with_fig4b(self, tiny_scale):
        # Same optimal p (paper Sec. 4.2.4) — on the coarse grid exactly.
        a = generate_figure("fig4b", tiny_scale).series_array("optimal_p")
        b = generate_figure("fig5b", tiny_scale).series_array("optimal_p")
        np.testing.assert_allclose(a, b, atol=0.11)

    def test_fig6b_energy_band(self, tiny_scale):
        res = generate_figure("fig6b", tiny_scale)
        opt = res.series_array("optimal_p")
        assert np.nanmax(opt) <= 0.15  # paper: between 0 and 0.1

    def test_fig7b_dual_of_fig6b(self, tiny_scale):
        e = generate_figure("fig6b", tiny_scale).series_array("optimal_p")
        r = generate_figure("fig7b", tiny_scale).series_array("optimal_p")
        assert np.nanmax(np.abs(e - r)) <= 0.11

    def test_fig12_ratio_stable(self, tiny_scale):
        res = generate_figure("fig12", tiny_scale)
        ratio = res.series_array("ratio")
        assert ratio.max() / ratio.min() < 1.6

    def test_panel_a_has_one_series_per_density(self, tiny_scale):
        res = generate_figure("fig4a", tiny_scale)
        assert set(res.series) == {f"rho={r}" for r in tiny_scale.rho_grid}


class TestRemainingAnalysisPanels:
    def test_fig5a_has_gaps_at_small_p(self, tiny_scale):
        res = generate_figure("fig5a", tiny_scale)
        # At the densest tiny-scale point, p=0.1 may or may not be
        # feasible, but values that exist are >= 1 phase.
        vals = np.concatenate([res.series_array(k) for k in res.series])
        finite = vals[np.isfinite(vals)]
        assert finite.size > 0 and finite.min() >= 1.0

    def test_fig6a_energy_increases_with_p(self, tiny_scale):
        res = generate_figure("fig6a", tiny_scale)
        for key in res.series:
            vals = res.series_array(key)
            finite = np.flatnonzero(np.isfinite(vals))
            if len(finite) >= 2:
                assert vals[finite[-1]] > vals[finite[0]]

    def test_fig7a_bounded(self, tiny_scale):
        res = generate_figure("fig7a", tiny_scale)
        for key in res.series:
            vals = res.series_array(key)
            assert np.all((vals >= 0) & (vals <= 1))


class TestRemainingSimulationPanels:
    def test_fig9a_latencies_exceed_one_phase(self, tiny_scale):
        res = generate_figure("fig9a", tiny_scale)
        vals = np.concatenate([res.series_array(k) for k in res.series])
        finite = vals[np.isfinite(vals)]
        assert finite.size > 0 and finite.min() >= 1.0

    def test_fig10a_feasible_points_positive(self, tiny_scale):
        res = generate_figure("fig10a", tiny_scale)
        vals = np.concatenate([res.series_array(k) for k in res.series])
        finite = vals[np.isfinite(vals)]
        assert np.all(finite >= 1.0)

    def test_fig9b_duality_with_fig8b(self, tiny_scale):
        a = generate_figure("fig8b", tiny_scale).series_array("optimal_p")
        b = generate_figure("fig9b", tiny_scale).series_array("optimal_p")
        # Same grid, noisy data: allow a few grid steps.
        assert np.nanmean(np.abs(a - b)) <= 3 * tiny_scale.sim_p_step

    def test_fig11a_bounded(self, tiny_scale):
        res = generate_figure("fig11a", tiny_scale)
        for key in res.series:
            vals = res.series_array(key)
            assert np.all((vals >= 0) & (vals <= 1))


class TestSimulationFigures:
    def test_grid_shared_across_figures(self, tiny_scale):
        grid_before = simulation_grid(tiny_scale, 20)
        generate_figure("fig8b", tiny_scale)
        assert simulation_grid(tiny_scale, 20) is grid_before

    def test_fig8b_shapes(self, tiny_scale):
        res = generate_figure("fig8b", tiny_scale)
        assert len(res.series_array("optimal_p")) == len(tiny_scale.rho_grid)
        reach = res.series_array("reachability")
        assert np.all((reach > 0.3) & (reach < 0.9))

    def test_fig11b_generates(self, tiny_scale):
        res = generate_figure("fig11b", tiny_scale)
        assert "optimal_p" in res.series


class TestFigureResult:
    def test_text_rendering(self, tiny_scale):
        res = generate_figure("fig4b", tiny_scale)
        text = res.to_text()
        assert "fig4b" in text and "optimal_p" in text

    def test_markdown_rendering(self, tiny_scale):
        md = generate_figure("fig4b", tiny_scale).to_markdown()
        assert md.startswith("### fig4b")
        assert "```" in md

    def test_series_array_unknown_key(self, tiny_scale):
        res = generate_figure("fig4b", tiny_scale)
        with pytest.raises(KeyError):
            res.series_array("nope")


class TestCli:
    def test_list(self, capsys):
        assert runall_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out and "fig12" in out

    def test_unknown_figure_exit_code(self, capsys):
        assert runall_main(["--figures", "fig99"]) == 2

    def test_single_analysis_figure(self, capsys):
        assert runall_main(["--figures", "fig4b", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "optimal_p" in out

    def test_output_file(self, tmp_path):
        target = tmp_path / "out.md"
        code = runall_main(
            ["--figures", "fig4b", "--markdown", "-o", str(target)]
        )
        assert code == 0
        assert "### fig4b" in target.read_text()

    def test_chart_option(self, capsys):
        assert runall_main(["--figures", "fig4b", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o optimal_p" in out  # legend of the ASCII chart

    def test_save_json_option(self, tmp_path, capsys):
        target = tmp_path / "json"
        code = runall_main(
            ["--figures", "fig4b", "--save-json", str(target)]
        )
        assert code == 0
        from repro.experiments.io import load_figures

        loaded = load_figures(target)
        assert "fig4b" in loaded


class TestOptimum:
    """The hardened dense-grid argmax/argmin helper."""

    def test_max_and_min(self):
        from repro.experiments.figures import _optimum

        assert _optimum(np.array([0.1, 0.9, 0.5]), "max") == 1
        assert _optimum(np.array([0.1, 0.9, 0.5]), "min") == 0

    def test_nan_entries_never_win(self):
        from repro.experiments.figures import _optimum

        assert _optimum(np.array([np.nan, 2.0, 1.0]), "min") == 2
        assert _optimum(np.array([np.nan, 2.0, 1.0]), "max") == 1

    def test_inf_entries_never_win(self):
        from repro.experiments.figures import _optimum

        assert _optimum(np.array([np.inf, 2.0]), "max") == 1
        assert _optimum(np.array([-np.inf, 2.0]), "min") == 1

    def test_ties_resolve_to_lowest_index(self):
        from repro.experiments.figures import _optimum

        assert _optimum(np.array([1.0, 1.0, 1.0]), "min") == 0
        assert _optimum(np.array([np.nan, 3.0, 3.0]), "max") == 1

    def test_all_nan_is_none(self):
        from repro.experiments.figures import _optimum

        assert _optimum(np.array([np.nan, np.nan]), "min") is None
        assert _optimum(np.array([np.nan, np.nan]), "max") is None


class TestOptimalPointParity:
    """Search path == dense-cache path for the optimal-p panels.

    The b-panels read the cached dense sweep when an a-panel already
    paid for it, and run the adaptive frontier search otherwise; both
    must produce bit-identical figures.
    """

    @pytest.mark.parametrize(
        "a_panel,b_panel",
        [("fig4a", "fig4b"), ("fig5a", "fig5b"), ("fig6a", "fig6b"), ("fig7a", "fig7b")],
    )
    def test_panels(self, tiny_scale, a_panel, b_panel):
        clear_caches()
        via_search = generate_figure(b_panel, tiny_scale)

        clear_caches()
        generate_figure(a_panel, tiny_scale)  # populates the dense cache
        via_dense = generate_figure(b_panel, tiny_scale)

        assert via_search.series.keys() == via_dense.series.keys()
        for name in via_search.series:
            np.testing.assert_array_equal(
                np.asarray(via_search.series[name], dtype=float),
                np.asarray(via_dense.series[name], dtype=float),
            )
        clear_caches()

    def test_fig12_ratio_parity(self, tiny_scale):
        clear_caches()
        via_search = generate_figure("fig12", tiny_scale)

        clear_caches()
        generate_figure("fig6a", tiny_scale)
        via_dense = generate_figure("fig12", tiny_scale)

        for name in via_search.series:
            np.testing.assert_array_equal(
                np.asarray(via_search.series[name], dtype=float),
                np.asarray(via_dense.series[name], dtype=float),
            )
        clear_caches()


class TestBlockSize:
    def test_scale_factories_accept_block_size(self):
        assert ExperimentScale.quick(block_size=8).block_size == 8
        assert ExperimentScale.full(block_size=16).block_size == 16
        assert ExperimentScale.quick().block_size is None

    def test_simulation_grid_threads_block_size(self, monkeypatch):
        from repro.experiments import figures as figures_mod

        captured = {}

        def fake_sweep_grid(config, rhos, ps, replications, **kwargs):
            captured.update(kwargs)
            return {
                (float(r), float(p)): [] for r in rhos for p in ps
            }

        monkeypatch.setattr(figures_mod, "sweep_grid", fake_sweep_grid)
        scale = ExperimentScale(
            name="tiny-bs",
            rho_grid=(20,),
            analysis_p_step=0.5,
            sim_p_step=0.5,
            replications=1,
            seed=3,
            workers=1,
            block_size=4,
        )
        simulation_grid(scale, 20)
        assert captured["block_size"] == 4
        clear_caches()

    def test_runall_block_size_flag(self, monkeypatch, capsys):
        import repro.experiments.runall as runall_mod

        seen = {}

        class _Fake:
            figure = "fig4a"

            def to_text(self):
                return "fake"

        def fake_generate(name, scale):
            seen["block_size"] = scale.block_size
            return _Fake()

        monkeypatch.setattr(runall_mod, "generate_figure", fake_generate)
        assert runall_mod.main(["--figures", "fig4a", "--block-size", "8"]) == 0
        assert seen["block_size"] == 8
