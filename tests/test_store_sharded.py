"""ShardedBackend: layout, migration, shard journals, CAS rotation."""

import json
import os

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import StoreCorruptionError, StoreError
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import (
    DiskStore,
    FileLock,
    ShardedBackend,
    ShardJournal,
    migrate_store,
    open_store,
)
from repro.store.cli import main as store_cli


@pytest.fixture
def results():
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    return replicate(ProbabilisticRelay(0.5), cfg, 4, seed=7)


@pytest.fixture
def keys(results):
    from repro.store import task_key
    from repro.utils.rng import as_seed_sequence

    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    children = as_seed_sequence(7).spawn(4)
    return [
        task_key(ProbabilisticRelay(0.5), cfg, child, "vector", "phase")
        for child in children
    ]


def assert_same(a, b):
    np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    np.testing.assert_array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.seed_entropy == b.seed_entropy


class TestLayout:
    def test_put_lands_in_first_hex_char_shard(self, tmp_path, results, keys):
        store = ShardedBackend(tmp_path / "s")
        store.put(keys[0], [results[0]])
        shard_dir = tmp_path / "s" / "shards" / keys[0][0]
        assert (shard_dir / "objects" / keys[0][:2] / f"{keys[0]}.json").exists()

    def test_round_trip_bit_identical(self, tmp_path, results, keys):
        store = ShardedBackend(tmp_path / "s")
        for key, res in zip(keys, results):
            store.put(key, [res])
        for key, res in zip(keys, results):
            (back,) = store.get(key)
            assert_same(res, back)

    def test_open_store_dispatches_on_marker(self, tmp_path):
        DiskStore(tmp_path / "classic")
        ShardedBackend(tmp_path / "sharded")
        assert isinstance(open_store(tmp_path / "classic"), DiskStore)
        assert isinstance(open_store(tmp_path / "sharded"), ShardedBackend)
        # A fresh directory defaults to the classic layout.
        assert isinstance(open_store(tmp_path / "new"), DiskStore)

    def test_sharded_marker_rejected_by_diskstore(self, tmp_path):
        ShardedBackend(tmp_path / "s")
        with pytest.raises(StoreError, match="unsupported store schema"):
            DiskStore(tmp_path / "s")

    def test_classic_marker_rejected_by_sharded(self, tmp_path):
        DiskStore(tmp_path / "c")
        with pytest.raises(StoreError, match="migrate"):
            ShardedBackend(tmp_path / "c")

    def test_keys_sorted_and_delete(self, tmp_path, results, keys):
        store = ShardedBackend(tmp_path / "s")
        for key, res in zip(keys, results):
            store.put(key, [res])
        assert list(store.keys()) == sorted(keys)
        assert store.delete(keys[0])
        assert not store.delete(keys[0])
        assert keys[0] not in store

    def test_stats_per_shard_breakdown(self, tmp_path, results, keys):
        store = ShardedBackend(tmp_path / "s")
        for key, res in zip(keys, results):
            store.put(key, [res])
        stats = store.stats()
        assert stats["entries"] == len(keys)
        assert set(stats["shards"]) == set("0123456789abcdef")
        per_shard = sum(s["entries"] for s in stats["shards"].values())
        assert per_shard == len(keys)
        for key in keys:
            assert stats["shards"][key[0]]["entries"] >= 1

    def test_verify_clean_and_corrupt(self, tmp_path, results, keys):
        store = ShardedBackend(tmp_path / "s")
        store.put(keys[0], [results[0]])
        assert store.verify() == []
        path = store.path_for(keys[0])
        path.write_text(path.read_text()[:-40])
        assert [k for k, _ in store.verify()] == [keys[0]]


class TestMigrate:
    def test_migrated_entries_byte_identical(self, tmp_path, results, keys):
        classic = DiskStore(tmp_path / "c")
        for key, res in zip(keys, results):
            classic.put(key, [res])
        classic.flush_index()
        report = migrate_store(tmp_path / "c", tmp_path / "s")
        assert report["entries"] == len(keys)
        sharded = open_store(tmp_path / "s")
        assert isinstance(sharded, ShardedBackend)
        for key in keys:
            assert (
                classic.path_for(key).read_bytes()
                == sharded.path_for(key).read_bytes()
            )
        assert sharded.verify() == []

    def test_migrate_moves_sweep_journals(self, tmp_path, results, keys):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
        classic = DiskStore(tmp_path / "c")
        replicate(ProbabilisticRelay(0.5), cfg, 4, seed=7, store=classic)
        journals = sorted(p.name for p in classic.journals_dir.glob("*.jsonl"))
        assert journals
        migrate_store(tmp_path / "c", tmp_path / "s")
        sharded = open_store(tmp_path / "s")
        assert (
            sorted(p.name for p in sharded.journals_dir.glob("*.jsonl"))
            == journals
        )

    def test_migrate_refuses_sharded_source_and_dirty_target(self, tmp_path):
        ShardedBackend(tmp_path / "s")
        with pytest.raises(StoreError, match="already sharded"):
            migrate_store(tmp_path / "s", tmp_path / "t")
        DiskStore(tmp_path / "c")
        (tmp_path / "dirty").mkdir()
        (tmp_path / "dirty" / "junk").write_text("x")
        with pytest.raises(StoreError, match="not empty"):
            migrate_store(tmp_path / "c", tmp_path / "dirty")

    def test_warm_replay_after_migration(self, tmp_path):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
        classic = DiskStore(tmp_path / "c")
        first = replicate(ProbabilisticRelay(0.5), cfg, 4, seed=7, store=classic)
        classic.flush_index()
        migrate_store(tmp_path / "c", tmp_path / "s")
        # A path now opens sharded and serves every task from cache.
        again = replicate(
            ProbabilisticRelay(0.5), cfg, 4, seed=7, store=tmp_path / "s"
        )
        for a, b in zip(first, again, strict=True):
            assert_same(a, b)


class TestShardJournal:
    def test_append_and_read_back(self, tmp_path):
        journal = ShardJournal(tmp_path / "j")
        journal.append("put", "a" * 64, 100)
        journal.append("delete", "b" * 64)
        ops = list(journal.entries())
        assert [e["op"] for e in ops] == ["put", "delete"]
        assert ops[0]["nbytes"] == 100

    def test_rotation_at_size_cap(self, tmp_path):
        journal = ShardJournal(tmp_path / "j", max_segment_bytes=200)
        for i in range(20):
            journal.append("put", f"{i:064x}", i)
        assert len(journal.segments()) > 1
        assert [e["key"] for e in journal.entries()] == [
            f"{i:064x}" for i in range(20)
        ]

    def test_rotation_cas_loser_appends_to_winner(self, tmp_path):
        a = ShardJournal(tmp_path / "j", max_segment_bytes=1)
        b = ShardJournal(tmp_path / "j", max_segment_bytes=1)
        a.append("put", "a" * 64, 1)
        b.append("put", "b" * 64, 2)
        # Every record is recorded exactly once across both views.
        assert sorted(e["key"] for e in a.entries()) == ["a" * 64, "b" * 64]

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = ShardJournal(tmp_path / "j")
        journal.append("put", "a" * 64, 1)
        journal.append("put", "b" * 64, 2)
        seg = journal.segments()[-1]
        text = seg.read_text()
        seg.write_text(text[: text.rindex('{"key"') + 9])  # tear the last line
        assert [e["key"] for e in journal.entries()] == ["a" * 64]

    def test_malformed_interior_line_raises(self, tmp_path):
        journal = ShardJournal(tmp_path / "j")
        journal.append("put", "a" * 64, 1)
        seg = journal.segments()[-1]
        with seg.open("a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps({"op": "put", "key": "b" * 64, "nbytes": 2}) + "\n")
        with pytest.raises(StoreCorruptionError, match="malformed shard journal"):
            list(journal.entries())

    def test_empty_segment_from_crashed_rotation_tolerated(self, tmp_path):
        journal = ShardJournal(tmp_path / "j", max_segment_bytes=1)
        journal.append("put", "a" * 64, 1)
        # Simulate a crash between segment create and header write.
        torn = journal.directory / "seg-00000099.jsonl"
        torn.touch()
        assert [e["key"] for e in journal.entries()] == ["a" * 64]
        # The next append lands in a fresh segment after the torn one.
        journal.append("put", "b" * 64, 2)
        assert sorted(e["key"] for e in journal.entries()) == ["a" * 64, "b" * 64]


class TestFileLock:
    def test_exclusive_within_reentry(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        with lock:
            assert lock.held
            with pytest.raises(StoreError, match="already held"):
                lock.acquire()
        assert not lock.held

    def test_release_without_acquire_is_noop(self, tmp_path):
        FileLock(tmp_path / ".lock").release()


class TestCli:
    def test_stats_shows_shards(self, tmp_path, results, keys, capsys):
        store = ShardedBackend(tmp_path / "s")
        store.put(keys[0], [results[0]])
        assert store_cli(["stats", str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert f"shard {keys[0][0]}: 1 entries" in out

    def test_stats_degrades_on_legacy_store(self, tmp_path, results, keys, capsys):
        classic = DiskStore(tmp_path / "c")
        classic.put(keys[0], [results[0]])
        classic.flush_index()
        assert store_cli(["stats", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "shard " not in out

    def test_stats_json_includes_shards(self, tmp_path, results, keys, capsys):
        store = ShardedBackend(tmp_path / "s")
        store.put(keys[0], [results[0]])
        assert store_cli(["stats", str(tmp_path / "s"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["shards"][keys[0][0]]["entries"] == 1

    def test_migrate_subcommand(self, tmp_path, results, keys, capsys):
        classic = DiskStore(tmp_path / "c")
        for key, res in zip(keys, results):
            classic.put(key, [res])
        classic.flush_index()
        code = store_cli(["migrate", str(tmp_path / "c"), str(tmp_path / "s")])
        assert code == 0
        assert f"migrated {len(keys)} entries" in capsys.readouterr().out
        assert isinstance(open_store(tmp_path / "s"), ShardedBackend)

    def test_migrate_refuses_bad_source(self, tmp_path, capsys):
        ShardedBackend(tmp_path / "s")
        code = store_cli(["migrate", str(tmp_path / "s"), str(tmp_path / "t")])
        assert code == 2
        assert "already sharded" in capsys.readouterr().err

    def test_verify_and_gc_work_on_sharded(self, tmp_path, results, keys, capsys):
        store = ShardedBackend(tmp_path / "s")
        for key, res in zip(keys, results):
            store.put(key, [res])
        store.flush_index()
        assert store_cli(["verify", str(tmp_path / "s")]) == 0
        # Leave a stale tmp file; gc must sweep shard objects dirs too.
        tmp_file = store.path_for(keys[0]).with_suffix(".json.tmp")
        tmp_file.parent.mkdir(parents=True, exist_ok=True)
        tmp_file.write_text("junk")
        assert store_cli(["gc", str(tmp_path / "s"), "--max-bytes", "0"]) == 0
        assert not tmp_file.exists()
        assert list(store.keys()) == []
