"""The optimize() pipeline: determinism, warm-store reuse, telemetry.

The acceptance-critical pin lives here: a repeated query against a warm
result store performs **zero** new simulator runs — every Monte-Carlo
task is served from the store (``store.misses == 0``,
``store.tasks_executed == 0``) and the frontier is bit-identical.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import SearchStep
from repro.optimize import optimize
from repro.sim.config import SimulationConfig

CONFIG = SimulationConfig(
    analysis=AnalysisConfig(n_rings=3, rho=20.0, quad_nodes=32)
)
KNOBS = dict(
    objectives=("reachability",),
    bounds={"latency": 5.0},
    seed=424242,
    resolution=0.05,
    restarts=2,
    replications=3,
    max_verify=2,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    reg = obs_metrics.registry()
    assert not reg.enabled
    yield
    reg.disable()
    reg.reset()


class TestOptimize:
    def test_no_verify_returns_surrogate_frontier(self):
        result = optimize(CONFIG, **{**KNOBS, "verify": False})
        assert result.sim_tasks == 0
        assert result.candidates == ()
        assert result.frontier
        assert all(pt.simulated is None for pt in result.frontier)
        assert result.best is not None
        assert result.best.evaluation.source == "surrogate"

    def test_verified_result(self):
        result = optimize(CONFIG, **KNOBS)
        assert result.candidates
        assert result.sim_tasks == len(result.candidates) * 3
        assert result.best is not None
        assert result.best.evaluation.source == "simulation"
        assert result.best.simulated is not None
        # The best frontier point carries both tiers' views of its rung.
        assert result.best.surrogate.p == result.best.p

    def test_fixed_seed_bit_identical(self):
        a = optimize(CONFIG, **KNOBS)
        b = optimize(CONFIG, **KNOBS)
        assert a.to_dict() == b.to_dict()
        assert a.frontier == b.frontier

    def test_analysis_config_accepted(self):
        result = optimize(CONFIG.analysis, **{**KNOBS, "verify": False})
        assert result.frontier

    def test_verification_knob_validation(self):
        with pytest.raises(ConfigurationError, match="replications"):
            optimize(CONFIG, **{**KNOBS, "replications": 0})
        with pytest.raises(ConfigurationError, match="max_verify"):
            optimize(CONFIG, **{**KNOBS, "max_verify": 0})

    def test_to_dict_is_json_ready(self):
        result = optimize(CONFIG, **KNOBS)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["best_p"] == result.best.p
        assert payload["candidates"] == list(result.candidates)
        assert payload["sim_tasks"] == result.sim_tasks


class TestWarmStore:
    def test_repeat_query_runs_zero_new_simulations(self, tmp_path):
        store = str(tmp_path / "store")
        cold = optimize(CONFIG, **KNOBS, store=store)

        with obs_metrics.collect() as reg:
            warm = optimize(CONFIG, **KNOBS, store=store)
            snap = reg.snapshot()

        assert snap.get("store.misses", 0) == 0
        assert snap.get("store.tasks_executed", 0) == 0
        assert snap["store.hits"] > 0
        # Same answer, bit for bit.
        assert warm.to_dict() == cold.to_dict()

    def test_shared_rungs_reused_across_queries(self, tmp_path):
        """A different query hitting the same rungs reuses their tasks."""
        store = str(tmp_path / "store")
        first = optimize(CONFIG, **KNOBS, store=store)

        other = {**KNOBS, "bounds": {"latency": 4.0}}
        with obs_metrics.collect() as reg:
            second = optimize(CONFIG, **other, store=store)
            snap = reg.snapshot()

        shared = set(first.candidates) & set(second.candidates)
        if shared:  # seeds are per-(seed, rung): shared rungs must hit
            assert snap.get("store.hits", 0) > 0


class TestTelemetry:
    def test_search_step_events(self):
        with obs_trace.capture() as buf:
            result = optimize(CONFIG, **KNOBS)
        steps = buf.of_type(SearchStep)
        probes = [s for s in steps if s.stage == "probe"]
        verifies = [s for s in steps if s.stage == "verify"]
        assert len(probes) == result.surrogate_probes
        assert len(verifies) == len(result.candidates)
        assert {s.rung for s in verifies} == set(result.candidates)

    def test_counters(self):
        with obs_metrics.collect() as reg:
            result = optimize(CONFIG, **KNOBS)
            snap = reg.snapshot()
        assert snap["optimize.searches"] == 1
        assert snap["optimize.restarts"] == 2
        assert snap["optimize.surrogate_probes"] == result.surrogate_probes
        assert snap["optimize.sim_tasks"] == result.sim_tasks

    def test_manifest(self, tmp_path):
        result = optimize(CONFIG, **KNOBS, manifest_dir=tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["kind"] == "optimize"
        assert manifest["params"]["best_p"] == result.best.p
        assert manifest["params"]["sim_tasks"] == result.sim_tasks
        assert manifest["seed"]["entropy"] == 424242


class TestEmptyFrontier:
    def test_impossible_bounds(self):
        impossible = {
            **KNOBS,
            "bounds": {"reachability": 0.999, "latency": 0.1},
            "objectives": ("energy",),
        }
        result = optimize(CONFIG, **impossible)
        assert result.frontier == ()
        assert result.best is None
        assert result.candidates == ()
