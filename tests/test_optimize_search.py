"""Shotgun + hillclimb search: dense-grid parity, determinism, seeds.

The central claim: on a ladder the climb's doubling offsets can cover,
the search returns the exact optimum a dense sweep would have picked —
including the lowest-``p`` convention on plateaus — while probing fewer
rungs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import default_probability_grid
from repro.errors import ConfigurationError
from repro.optimize import (
    Evaluation,
    OptimizeQuery,
    SurrogateModel,
    better,
    candidate_seed,
    search_frontier,
)
from repro.optimize.search import RESTART_NAMESPACE, SEED_NAMESPACE
from repro.optimize.spec import best_evaluation

LADDER = default_probability_grid(0.05)

QUERIES = {
    "reach_at_latency": OptimizeQuery(
        bounds={"latency": 5.0}, objectives=("reachability",)
    ),
    "latency_at_reach": OptimizeQuery(
        bounds={"reachability": 0.72}, objectives=("latency",)
    ),
    "energy_at_reach": OptimizeQuery(
        bounds={"reachability": 0.72}, objectives=("energy",)
    ),
    "reach_at_energy": OptimizeQuery(
        bounds={"energy": 35.0}, objectives=("reachability",)
    ),
}


class TestCandidateSeed:
    def test_pure_function_of_seed_and_rung(self):
        a = candidate_seed(1234, 7)
        b = candidate_seed(1234, 7)
        assert a.entropy == b.entropy
        assert a.spawn_key == b.spawn_key

    def test_namespaced_spawn_key(self):
        root = np.random.SeedSequence(1234)
        child = candidate_seed(root, 3)
        assert child.entropy == root.entropy
        assert child.spawn_key == (*root.spawn_key, SEED_NAMESPACE, 3)
        assert SEED_NAMESPACE != RESTART_NAMESPACE

    def test_distinct_rungs_distinct_streams(self):
        states = {
            tuple(candidate_seed(42, r).generate_state(4)) for r in range(16)
        }
        assert len(states) == 16

    def test_parent_not_mutated(self):
        root = np.random.SeedSequence(1234)
        before = root.n_children_spawned
        candidate_seed(root, 0)
        assert root.n_children_spawned == before

    def test_negative_rung_rejected(self):
        with pytest.raises(ConfigurationError, match="rung"):
            candidate_seed(42, -1)


def _surrogate_evaluator(query, rho=60.0):
    model = SurrogateModel(AnalysisConfig(rho=rho))
    return model, (
        lambda rungs: model.evaluate(query, [float(LADDER[r]) for r in rungs])
    )


class TestDenseParity:
    """With offsets covering the ladder, search == dense argmax/argmin."""

    @pytest.mark.parametrize("rho", [20.0, 60.0, 140.0])
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_best_matches_dense_sweep(self, name, rho):
        query = QUERIES[name]
        model, evaluate = _surrogate_evaluator(query, rho)
        outcome = search_frontier(evaluate, LADDER, query, restarts=0)

        dense = model.evaluate(query, [float(p) for p in LADDER])
        want = best_evaluation(dense, query)

        got = best_evaluation(outcome.frontier, query)
        if want is None:
            assert got is None
        else:
            assert got is not None
            assert got.p == want.p
            assert got == want

    def test_probes_at_most_ladder(self):
        query = QUERIES["reach_at_latency"]
        _, evaluate = _surrogate_evaluator(query)
        outcome = search_frontier(evaluate, LADDER, query, restarts=0)
        assert outcome.probes <= LADDER.size
        assert set(outcome.evaluations) <= set(range(LADDER.size))


class TestDeterminism:
    def test_fixed_seed_reproduces_everything(self):
        query = QUERIES["latency_at_reach"]
        runs = []
        for _ in range(2):
            _, evaluate = _surrogate_evaluator(query)
            runs.append(search_frontier(evaluate, LADDER, query, 987, restarts=3))
        a, b = runs
        assert a.frontier == b.frontier
        assert a.evaluations == b.evaluations
        assert (a.probes, a.restarts, a.steps) == (b.probes, b.restarts, b.steps)

    def test_zero_restarts_ignores_seed(self):
        query = QUERIES["reach_at_energy"]
        _, ev1 = _surrogate_evaluator(query)
        _, ev2 = _surrogate_evaluator(query)
        a = search_frontier(ev1, LADDER, query, 1, restarts=0)
        b = search_frontier(ev2, LADDER, query, 2, restarts=0)
        assert a.frontier == b.frontier


class TestPlateau:
    def test_flat_landscape_drains_to_lowest_p(self):
        """Every rung identical: the tie-break must land on rung 0."""
        query = OptimizeQuery(objectives=("latency",))

        def evaluate(rungs):
            return [
                Evaluation(
                    p=float(LADDER[r]),
                    reachability=0.9,
                    latency=4.0,
                    energy=20.0,
                    feasible=True,
                )
                for r in rungs
            ]

        outcome = search_frontier(evaluate, LADDER, query, restarts=0)
        assert len(outcome.frontier) == 1
        assert outcome.frontier[0].p == float(LADDER[0])

    def test_all_infeasible_empty_frontier(self):
        query = OptimizeQuery(
            bounds={"reachability": 0.99}, objectives=("latency",)
        )

        def evaluate(rungs):
            return [
                Evaluation(
                    p=float(LADDER[r]),
                    reachability=0.1,
                    latency=4.0,
                    energy=20.0,
                    feasible=False,
                    violation=0.89,
                )
                for r in rungs
            ]

        outcome = search_frontier(evaluate, LADDER, query, restarts=0)
        assert outcome.frontier == ()
        assert outcome.probes > 0


class TestValidation:
    def test_empty_ladder(self):
        query = OptimizeQuery(objectives=("latency",))
        with pytest.raises(ConfigurationError, match="ladder"):
            search_frontier(lambda r: [], [], query)

    def test_negative_restarts(self):
        query = OptimizeQuery(objectives=("latency",))
        with pytest.raises(ConfigurationError, match="restarts"):
            search_frontier(lambda r: [], LADDER, query, restarts=-1)

    def test_bad_neighborhood(self):
        query = OptimizeQuery(objectives=("latency",))
        with pytest.raises(ConfigurationError, match="neighborhood"):
            search_frontier(lambda r: [], LADDER, query, neighborhood=0)
