"""Tracer, sinks, and the JSONL wire format."""

from __future__ import annotations

import json

import pytest

from repro.obs import trace
from repro.obs.events import (
    ChannelDelivery,
    NodeInformed,
    PhaseComplete,
    RunComplete,
    SlotResolved,
    event_from_dict,
    event_to_dict,
)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Tests must not leak sinks into the process-global tracer."""
    tracer = trace.get_tracer()
    assert not tracer.enabled
    yield
    for sink in tracer.sinks:
        tracer.detach(sink)


EXAMPLES = [
    SlotResolved(phase=2, slot=5, n_tx=3, n_rx=7, n_collisions=2),
    NodeInformed(node=14, sender=3, phase=2, slot=5),
    PhaseComplete(phase=2, n_tx=4, n_new=9, informed_total=23),
    RunComplete(
        phases=6,
        slots=18,
        collisions=41,
        reachability=0.875,
        n_field_nodes=64,
        total_tx=30,
        total_rx=120,
    ),
    ChannelDelivery(model="cam", n_tx=3, n_rx=7, n_collided=2),
]


class TestEvents:
    @pytest.mark.parametrize("event", EXAMPLES, ids=lambda e: type(e).__name__)
    def test_dict_round_trip(self, event):
        d = event_to_dict(event)
        assert d["event"] == type(event).__name__
        assert event_from_dict(d) == event

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            event_from_dict({"event": "NoSuchEvent"})

    def test_extra_keys_ignored(self):
        d = event_to_dict(EXAMPLES[0])
        d["future_field"] = "whatever"
        assert event_from_dict(d) == EXAMPLES[0]


class TestTracer:
    def test_disabled_by_default(self):
        assert trace.get_tracer().enabled is False

    def test_attach_detach_toggle_enabled(self):
        tracer = trace.get_tracer()
        sink = trace.RingBufferSink()
        tracer.attach(sink)
        assert tracer.enabled
        tracer.detach(sink)
        assert not tracer.enabled

    def test_attach_is_idempotent(self):
        tracer = trace.get_tracer()
        sink = trace.RingBufferSink()
        tracer.attach(sink)
        tracer.attach(sink)
        tracer.emit(EXAMPLES[0])
        assert len(sink) == 1
        tracer.detach(sink)

    def test_fan_out_to_all_sinks(self):
        tracer = trace.get_tracer()
        a, b = trace.RingBufferSink(), trace.NullSink()
        tracer.attach(a)
        tracer.attach(b)
        tracer.emit(EXAMPLES[0])
        tracer.emit(EXAMPLES[1])
        assert a.events == [EXAMPLES[0], EXAMPLES[1]]
        assert b.count == 2
        tracer.detach(a)
        tracer.detach(b)

    def test_detach_unknown_sink_is_noop(self):
        trace.get_tracer().detach(trace.NullSink())


class TestCapture:
    def test_default_ring_buffer(self):
        with trace.capture() as buf:
            trace.get_tracer().emit(EXAMPLES[0])
        assert buf.events == [EXAMPLES[0]]
        assert not trace.get_tracer().enabled

    def test_detaches_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace.capture():
                raise RuntimeError("boom")
        assert not trace.get_tracer().enabled

    def test_of_type_and_clear(self):
        with trace.capture() as buf:
            for e in EXAMPLES:
                trace.get_tracer().emit(e)
        assert buf.of_type(SlotResolved) == [EXAMPLES[0]]
        assert len(buf) == len(EXAMPLES)
        buf.clear()
        assert len(buf) == 0

    def test_ring_buffer_maxlen(self):
        sink = trace.RingBufferSink(maxlen=2)
        with trace.capture(sink):
            for e in EXAMPLES[:3]:
                trace.get_tracer().emit(e)
        assert sink.events == EXAMPLES[1:3]


class TestJsonl:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with trace.capture(trace.JsonlSink(path)):
            for e in EXAMPLES:
                trace.get_tracer().emit(e)
        assert list(trace.read_jsonl(path)) == EXAMPLES

    def test_lines_are_json_objects(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with trace.capture(trace.JsonlSink(path)):
            trace.get_tracer().emit(EXAMPLES[0])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "SlotResolved"

    def test_append_across_sinks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for e in EXAMPLES[:2]:
            with trace.capture(trace.JsonlSink(path)):
                trace.get_tracer().emit(e)
        assert list(trace.read_jsonl(path)) == EXAMPLES[:2]

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with trace.capture(trace.JsonlSink(path)):
            pass
        assert not path.exists()
