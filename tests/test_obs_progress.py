"""Progress reporting: the sweep hook, stage lines, and the battery CLI."""

from __future__ import annotations

import io

from repro.analysis.config import AnalysisConfig
from repro.experiments import runall
from repro.experiments.figures import FIGURES
from repro.obs.progress import SweepProgress, stage
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, sweep_grid
from repro.utils.parallel import parallel_map


class TestSweepProgress:
    def test_final_line_always_prints(self):
        out = io.StringIO()
        prog = SweepProgress(4, "test", min_interval=1e9, stream=out)
        prog.update(2, 4, [])
        prog.update(4, 4, [])
        text = out.getvalue()
        assert "[test] 4/4 runs (100%)" in text

    def test_throttling(self):
        out = io.StringIO()
        prog = SweepProgress(100, min_interval=1e9, stream=out)
        for i in range(1, 100):
            prog.update(i, 100, [])
        assert out.getvalue() == ""  # nothing but the final line ever prints

    def test_aggregates_run_results(self, small_sim_config):
        out = io.StringIO()
        results = replicate(ProbabilisticRelay(0.5), small_sim_config, 2, 7)
        prog = SweepProgress(2, min_interval=0.0, stream=out)
        prog.update(1, 2, results[:1])
        prog.update(2, 2, results[1:])
        text = out.getvalue()
        assert "collisions/run" in text
        assert "mean reach" in text
        assert "eta" in text


class TestStage:
    def test_three_shapes(self):
        out = io.StringIO()
        stage(1, 3, "fig5a", stream=out)
        stage(1, 3, "fig5a", elapsed=2.0, stream=out)
        stage(2, 3, "fig5b", error="ValueError: nope", stream=out)
        lines = out.getvalue().splitlines()
        assert lines[0] == "[1/3] fig5a ..."
        assert lines[1] == "[1/3] fig5a done in 2.0s"
        assert lines[2] == "[2/3] fig5b FAILED: ValueError: nope"

    def test_long_durations_humanized(self):
        out = io.StringIO()
        stage(1, 1, "x", elapsed=3900.0, stream=out)
        assert "1.1h" in out.getvalue()


class TestParallelMapHook:
    def test_serial_path_calls_per_item(self):
        calls = []
        out = parallel_map(
            _square, [1, 2, 3], workers=1, progress=lambda d, t, r: calls.append((d, t, list(r)))
        )
        assert out == [1, 4, 9]
        assert calls == [(1, 3, [1]), (2, 3, [4]), (3, 3, [9])]

    def test_pool_path_reports_all_and_preserves_order(self):
        seen = {"done": 0}

        def hook(done, total, results):
            seen["done"] = max(seen["done"], done)
            assert total == 20

        out = parallel_map(
            _square, list(range(20)), workers=2, chunk_size=3, progress=hook
        )
        assert out == [i * i for i in range(20)]
        assert seen["done"] == 20

    def test_no_hook_unchanged(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]


def _square(x):
    return x * x


class TestSweepGridProgress:
    def test_progress_lines_on_stderr(self, capsys):
        config = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=10.0, slots=3)
        )
        sweep_grid(config, [10.0], [0.5], 2, seed=3, progress=True)
        err = capsys.readouterr().err
        assert "[sweep]" in err
        assert "2/2 runs (100%)" in err

    def test_silent_by_default(self, capsys):
        config = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=10.0, slots=3)
        )
        sweep_grid(config, [10.0], [0.5], 2, seed=3)
        assert capsys.readouterr().err == ""


class TestRunallBattery:
    def test_stage_lines_and_exit_zero(self, capsys):
        assert runall.main(["--figures", "fig4b"]) == 0
        captured = capsys.readouterr()
        assert "[1/1] fig4b ..." in captured.err
        assert "[1/1] fig4b done in" in captured.err

    def test_failing_figure_exits_one_with_message(self, capsys, monkeypatch):
        def boom(scale):
            raise RuntimeError("synthetic figure failure")

        monkeypatch.setitem(FIGURES, "figboom", boom)
        code = runall.main(["--figures", "fig4b,figboom"])
        captured = capsys.readouterr()
        assert code == 1
        # The broken figure is reported clearly...
        assert "figboom FAILED: RuntimeError: synthetic figure failure" in captured.err
        assert "error: 1/2 figure(s) failed" in captured.err
        # ...and the healthy one still rendered.
        assert "fig4b" in captured.out

    def test_unknown_figure_exits_two(self, capsys):
        assert runall.main(["--figures", "nope"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_save_json_writes_manifest(self, tmp_path, capsys):
        from repro.experiments.io import load_figures_with_manifest

        out_dir = tmp_path / "out"
        assert (
            runall.main(["--figures", "fig4b", "--save-json", str(out_dir)]) == 0
        )
        capsys.readouterr()
        figures, manifest = load_figures_with_manifest(out_dir)
        assert "fig4b" in figures
        assert manifest is not None
        assert manifest["kind"] == "experiments.runall"
        assert manifest["params"]["figures"] == ["fig4b"]
        assert manifest["params"]["failed"] == []
