"""The tier-1 hook: the repo itself must be lint-clean.

This is the pytest side of the CI gate (`python -m repro.analysis src
tests benchmarks`): every invariant rule runs over the real tree, and
any unsuppressed, unbaselined finding fails the suite.  The committed
baseline is empty and this test also keeps it that way.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint.baseline import fingerprint_findings, load_baseline
from repro.analysis.lint.core import check_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKED = ("src", "tests", "benchmarks", "examples")


def test_repo_has_no_new_findings():
    findings, _ = check_paths(
        [REPO_ROOT / p for p in CHECKED if (REPO_ROOT / p).exists()],
        root=REPO_ROOT,
    )
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    new = [
        f
        for f, fp in fingerprint_findings([f for f in findings if not f.suppressed])
        if fp not in baseline
    ]
    assert new == [], "new invariant-lint findings:\n" + "\n".join(
        f"  {f.location()}  {f.rule}  {f.message}" for f in new
    )


def test_committed_baseline_is_empty():
    """The baseline mechanism exists for future rule rollouts; the tree
    itself carries no grandfathered debt."""
    baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
    assert len(baseline) == 0


def test_every_suppression_is_used_and_reasoned():
    """Stale allow-comments are debt too: each one must still be
    suppressing a live finding."""
    findings, unused = check_paths(
        [REPO_ROOT / p for p in CHECKED if (REPO_ROOT / p).exists()],
        root=REPO_ROOT,
    )
    assert unused == [], "unused suppressions:\n" + "\n".join(
        f"  line {s.line}: allow({', '.join(s.rules)})" for s in unused
    )
    for f in findings:
        if f.suppressed:
            assert f.suppress_reason, f"reasonless suppression at {f.location()}"
