"""Optimal-probability search: sweeps, optima, duality, refinement."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.optimizer import (
    METRICS,
    default_probability_grid,
    optimal_probability,
    sweep_metric,
)
from repro.errors import ConfigurationError, InfeasibleConstraintError


@pytest.fixture
def cfg():
    return AnalysisConfig(n_rings=4, rho=40.0, quad_nodes=48)


COARSE = np.arange(0.05, 1.001, 0.05)


class TestGrid:
    def test_default_grid_is_papers(self):
        grid = default_probability_grid()
        assert len(grid) == 100
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(1.0)

    def test_custom_step(self):
        grid = default_probability_grid(0.25)
        np.testing.assert_allclose(grid, [0.25, 0.5, 0.75, 1.0])

    def test_invalid_step(self):
        with pytest.raises(ConfigurationError):
            default_probability_grid(0.0)
        with pytest.raises(ValueError):
            default_probability_grid(2.0)


class TestSweep:
    def test_shapes(self, cfg):
        grid, values = sweep_metric(cfg, "reachability_at_latency", 5, COARSE)
        assert grid.shape == values.shape == COARSE.shape

    def test_infeasible_points_are_nan(self, cfg):
        grid, values = sweep_metric(
            cfg, "latency_at_reachability", 0.72, np.array([0.003, 0.5])
        )
        assert np.isnan(values[0]) and np.isfinite(values[1])

    def test_unknown_metric(self, cfg):
        with pytest.raises(ConfigurationError):
            sweep_metric(cfg, "made_up_metric", 5)

    def test_empty_grid_rejected(self, cfg):
        with pytest.raises(ValueError):
            sweep_metric(cfg, "reachability_at_latency", 5, np.array([]))


class TestOptimum:
    def test_max_metric_optimum_beats_endpoints(self, cfg):
        res = optimal_probability(cfg, "reachability_at_latency", 5, p_grid=COARSE)
        assert res.value >= np.nanmax(res.values) - 1e-12
        assert res.p in COARSE

    def test_min_metric(self, cfg):
        res = optimal_probability(cfg, "energy_at_reachability", 0.6, p_grid=COARSE)
        assert res.value == np.nanmin(res.values)

    def test_all_infeasible_raises(self, cfg):
        with pytest.raises(InfeasibleConstraintError):
            optimal_probability(
                cfg,
                "latency_at_reachability",
                0.72,
                p_grid=np.array([0.001, 0.002]),
            )

    def test_feasible_fraction(self, cfg):
        res = optimal_probability(
            cfg,
            "latency_at_reachability",
            0.72,
            p_grid=np.array([0.003, 0.3, 0.6]),
        )
        assert res.feasible_fraction == pytest.approx(2 / 3)

    def test_result_records_inputs(self, cfg):
        res = optimal_probability(cfg, "reachability_at_latency", 5, p_grid=COARSE)
        assert res.metric == "reachability_at_latency"
        assert res.constraint == 5.0
        assert res.config is cfg


class TestDuality:
    def test_fig4b_equals_fig5b_optimal_p(self, cfg):
        """Paper Sec. 4.2.4: max-reach@latency and min-latency@reach are
        duals, so (on the same grid, with the matched target) the optima
        coincide."""
        r_opt = optimal_probability(cfg, "reachability_at_latency", 5, p_grid=COARSE)
        # Use the achieved optimum as the dual's target.
        target = r_opt.value - 1e-6
        l_opt = optimal_probability(
            cfg, "latency_at_reachability", target, p_grid=COARSE
        )
        assert l_opt.p == pytest.approx(r_opt.p, abs=0.051)
        assert l_opt.value == pytest.approx(5.0, abs=0.2)


class TestRefine:
    def test_refinement_improves_or_matches(self, cfg):
        coarse = optimal_probability(
            cfg, "reachability_at_latency", 5, p_grid=np.arange(0.1, 1.01, 0.1)
        )
        refined = optimal_probability(
            cfg,
            "reachability_at_latency",
            5,
            p_grid=np.arange(0.1, 1.01, 0.1),
            refine=True,
        )
        assert refined.value >= coarse.value - 1e-12

    def test_refined_p_stays_near_grid_optimum(self, cfg):
        refined = optimal_probability(
            cfg,
            "reachability_at_latency",
            5,
            p_grid=np.arange(0.1, 1.01, 0.1),
            refine=True,
        )
        assert abs(refined.p - 0.3) <= 0.2  # within one grid cell of coarse opt


class TestOptimalIntensity:
    def test_density_free_constant(self):
        """p* · rho is invariant across the density family (the scaling
        law of the recursion), up to grid resolution."""
        from repro.analysis.optimizer import optimal_intensity

        grid = np.arange(0.01, 1.001, 0.01)
        intensities = [
            optimal_intensity(
                AnalysisConfig(n_rings=4, rho=rho, quad_nodes=48),
                "reachability_at_latency",
                5,
                p_grid=grid,
                refine=True,
            )
            for rho in (40, 80, 160)
        ]
        assert max(intensities) / min(intensities) < 1.1

    def test_predicts_other_density(self):
        """Tune once, transfer by p = intensity / rho."""
        from repro.analysis.metrics import reachability_at_latency
        from repro.analysis.optimizer import optimal_intensity, optimal_probability

        grid = np.arange(0.01, 1.001, 0.01)
        base = AnalysisConfig(n_rings=4, rho=60, quad_nodes=48)
        intensity = optimal_intensity(
            base, "reachability_at_latency", 5, p_grid=grid
        )
        target = base.with_rho(120)
        transferred = min(1.0, intensity / 120)
        direct = optimal_probability(
            target, "reachability_at_latency", 5, p_grid=grid
        )
        achieved = reachability_at_latency(target, transferred, 5)
        assert achieved >= 0.99 * direct.value


class TestMetricSpecs:
    def test_all_four_metrics_registered(self):
        assert set(METRICS) == {
            "reachability_at_latency",
            "latency_at_reachability",
            "energy_at_reachability",
            "reachability_at_energy",
        }

    def test_better_handles_nan(self):
        spec = METRICS["reachability_at_latency"]
        assert spec.better(0.5, float("nan"))
        assert not spec.better(float("nan"), 0.5)

    def test_sense_direction(self):
        assert METRICS["reachability_at_latency"].better(0.9, 0.5)
        assert METRICS["energy_at_reachability"].better(10.0, 20.0)
