"""Spatial samplers: support bounds and uniformity."""

import numpy as np
import pytest
from scipy import stats

from repro.geometry.sampling import sample_annulus, sample_disk, sample_ring_offsets
from repro.errors import ConfigurationError


class TestSampleDisk:
    def test_shape_and_support(self, rng):
        pts = sample_disk(5000, 3.0, rng)
        assert pts.shape == (5000, 2)
        assert np.all(np.hypot(pts[:, 0], pts[:, 1]) <= 3.0)

    def test_zero_points(self, rng):
        assert sample_disk(0, 1.0, rng).shape == (0, 2)

    def test_center_offset(self, rng):
        pts = sample_disk(2000, 1.0, rng, center=(10.0, -5.0))
        assert np.all(np.hypot(pts[:, 0] - 10.0, pts[:, 1] + 5.0) <= 1.0)

    def test_radial_uniformity(self, rng):
        # r^2 / R^2 must be Uniform(0, 1) for an area-uniform sample.
        pts = sample_disk(20000, 2.0, rng)
        u = (pts**2).sum(axis=1) / 4.0
        assert stats.kstest(u, "uniform").pvalue > 1e-3

    def test_angular_uniformity(self, rng):
        pts = sample_disk(20000, 1.0, rng)
        theta = (np.arctan2(pts[:, 1], pts[:, 0]) + np.pi) / (2 * np.pi)
        assert stats.kstest(theta, "uniform").pvalue > 1e-3

    def test_invalid_radius(self, rng):
        with pytest.raises(ConfigurationError):
            sample_disk(10, -1.0, rng)


class TestSampleAnnulus:
    def test_support(self, rng):
        pts = sample_annulus(5000, 1.0, 2.0, rng)
        d = np.hypot(pts[:, 0], pts[:, 1])
        assert np.all(d >= 1.0) and np.all(d <= 2.0)

    def test_area_uniform(self, rng):
        pts = sample_annulus(20000, 1.0, 3.0, rng)
        u = ((pts**2).sum(axis=1) - 1.0) / (9.0 - 1.0)
        assert stats.kstest(u, "uniform").pvalue > 1e-3

    def test_degenerate_interval_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_annulus(10, 2.0, 2.0, rng)


class TestRingOffsets:
    def test_support(self, rng):
        x = sample_ring_offsets(1000, ring=3, width=1.0, rng=rng)
        assert np.all((x >= 0) & (x <= 1.0))

    def test_density_proportional_to_radius(self, rng):
        # In ring j, offsets weight like (j-1) + x; check the mean.
        x = sample_ring_offsets(100_000, ring=4, width=1.0, rng=rng)
        # E[x] = ∫ x (3 + x) dx / ∫ (3 + x) dx over [0,1] = (3/2+1/3)/(3+1/2)
        expected = (1.5 + 1.0 / 3.0) / 3.5
        assert x.mean() == pytest.approx(expected, abs=0.01)

    def test_ring_one_is_sqrt_law(self, rng):
        x = sample_ring_offsets(100_000, ring=1, width=1.0, rng=rng)
        # density ∝ x on [0, 1] → E[x] = 2/3
        assert x.mean() == pytest.approx(2.0 / 3.0, abs=0.01)
