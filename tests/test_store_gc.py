"""Garbage collection: LRU order, size/age caps, dry runs."""

import os

import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore, collect_garbage, task_key


@pytest.fixture
def store(tmp_path):
    return DiskStore(tmp_path / "store")


@pytest.fixture
def populated(store):
    """Three entries with mtimes 100 < 200 < 300 (LRU -> MRU)."""
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    runs = replicate(ProbabilisticRelay(0.5), cfg, 1, seed=7)
    keys = []
    for i, seed in enumerate((1, 2, 3)):
        key = task_key(ProbabilisticRelay(0.5), cfg, seed, "vector", "phase")
        store.put(key, runs)
        os.utime(store.path_for(key), ((i + 1) * 100.0, (i + 1) * 100.0))
        keys.append(key)
    return keys


class TestCollectGarbage:
    def test_noop_without_caps(self, store, populated):
        report = collect_garbage(store, now=1000.0)
        assert report.removed == 0 and report.examined == 3

    def test_age_cap_evicts_old_entries(self, store, populated):
        report = collect_garbage(store, max_age_s=150.0, now=300.0)
        # ages at now=300: 200, 100, 0 -> only the first exceeds 150
        assert report.removed == 1
        assert report.removed_keys == (populated[0],)
        assert store.get(populated[0]) is None
        assert store.get(populated[2]) is not None

    def test_size_cap_evicts_lru_first(self, store, populated):
        entry_size = store.path_for(populated[0]).stat().st_size
        report = collect_garbage(store, max_bytes=entry_size, now=1000.0)
        assert report.removed == 2
        assert list(report.removed_keys) == populated[:2]  # oldest first
        assert store.get(populated[2]) is not None
        assert store.nbytes() <= entry_size

    def test_zero_cap_empties_store(self, store, populated):
        report = collect_garbage(store, max_bytes=0, now=1000.0)
        assert report.removed == 3
        assert list(store.keys()) == []
        assert report.bytes_after == 0

    def test_dry_run_touches_nothing(self, store, populated):
        report = collect_garbage(store, max_bytes=0, now=1000.0, dry_run=True)
        assert report.removed == 3 and report.dry_run
        assert len(list(store.keys())) == 3

    def test_orphan_tmp_files_swept(self, store, populated):
        orphan = store.objects_dir / "ab" / "orphan.json.tmp"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_text("partial write")
        collect_garbage(store, now=1000.0)
        assert not orphan.exists()

    def test_report_str(self, store, populated):
        report = collect_garbage(store, max_bytes=0, now=1000.0, dry_run=True)
        assert "would remove 3/3" in str(report)
