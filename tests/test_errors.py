"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)


def test_configuration_error_is_value_error():
    # So sloppy callers catching ValueError still see config mistakes.
    assert issubclass(errors.ConfigurationError, ValueError)


def test_convergence_is_model_error():
    assert issubclass(errors.ConvergenceError, errors.ModelError)


def test_infeasible_is_model_error():
    assert issubclass(errors.InfeasibleConstraintError, errors.ModelError)


def test_protocol_is_simulation_error():
    assert issubclass(errors.ProtocolError, errors.SimulationError)


def test_errors_carry_messages():
    with pytest.raises(errors.ReproError, match="boom"):
        raise errors.SimulationError("boom")
