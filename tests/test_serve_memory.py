"""Read-through memory tier: LRU bounds, bit-identity, counters."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import metrics as obs_metrics
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.serve import MemoryTier, ReadThroughStore
from repro.store import DiskStore, ShardedBackend, task_key
from repro.utils.rng import as_seed_sequence


@pytest.fixture
def results():
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    return replicate(ProbabilisticRelay(0.5), cfg, 4, seed=7)


@pytest.fixture
def keys():
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    children = as_seed_sequence(7).spawn(4)
    return [
        task_key(ProbabilisticRelay(0.5), cfg, child, "vector", "phase")
        for child in children
    ]


def assert_same(a, b):
    np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    np.testing.assert_array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.seed_entropy == b.seed_entropy


class TestMemoryTier:
    def test_bounded_lru_evicts_oldest(self):
        tier = MemoryTier(max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        tier.put("c", 3)
        assert len(tier) == 2
        assert "a" not in tier
        assert tier.get("b") == 2

    def test_get_refreshes_recency(self):
        tier = MemoryTier(max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        tier.get("a")  # a is now most recent
        tier.put("c", 3)
        assert "a" in tier
        assert "b" not in tier

    def test_peek_does_not_refresh_recency(self):
        tier = MemoryTier(max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        assert tier.peek("a") == 1  # no LRU move
        tier.put("c", 3)
        assert "a" not in tier

    def test_hit_miss_counters(self):
        tier = MemoryTier(max_entries=4)
        tier.put("a", 1)
        with obs_metrics.collect() as reg:
            tier.get("a")
            tier.get("a")
            tier.get("zzz")
            snap = reg.snapshot()
        assert snap["serve.memory.hits"] == 2
        assert snap["serve.memory.misses"] == 1

    def test_discard_and_clear(self):
        tier = MemoryTier(max_entries=4)
        tier.put("a", 1)
        tier.put("b", 2)
        tier.discard("a")
        assert "a" not in tier
        tier.clear()
        assert len(tier) == 0

    def test_stats(self):
        tier = MemoryTier(max_entries=3)
        tier.put("a", 1)
        stats = tier.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 3


class TestReadThroughStore:
    @pytest.mark.parametrize("backend_cls", [DiskStore, ShardedBackend])
    def test_warm_reads_bit_identical(self, tmp_path, results, keys, backend_cls):
        backend = backend_cls(tmp_path / "s")
        store = ReadThroughStore(backend, max_entries=8)
        for key, res in zip(keys, results):
            store.put(key, [res])
        # Cold (memory populated by put's write-through or first get),
        # then warm from memory: both bit-identical to the original.
        for key, res in zip(keys, results):
            (cold,) = store.get(key)
            (warm,) = store.get(key)
            assert_same(res, cold)
            assert_same(res, warm)

    def test_get_populates_memory_from_disk(self, tmp_path, results, keys):
        backend = DiskStore(tmp_path / "s")
        backend.put(keys[0], [results[0]])
        store = ReadThroughStore(backend, max_entries=8)
        assert store.memory.peek(keys[0]) is None
        store.get(keys[0])
        assert store.memory.peek(keys[0]) is not None

    def test_warm_get_skips_disk(self, tmp_path, results, keys):
        backend = DiskStore(tmp_path / "s")
        store = ReadThroughStore(backend, max_entries=8)
        store.put(keys[0], [results[0]])
        store.get(keys[0])  # memory now warm
        # Removing the backing file proves warm reads never touch disk.
        store.path_for(keys[0]).unlink()
        (warm,) = store.get(keys[0])
        assert_same(results[0], warm)

    def test_delete_clears_both_tiers(self, tmp_path, results, keys):
        backend = DiskStore(tmp_path / "s")
        store = ReadThroughStore(backend, max_entries=8)
        store.put(keys[0], [results[0]])
        store.get(keys[0])
        assert store.delete(keys[0])
        assert keys[0] not in store
        assert store.memory.peek(keys[0]) is None

    def test_eviction_falls_back_to_disk(self, tmp_path, results, keys):
        backend = DiskStore(tmp_path / "s")
        store = ReadThroughStore(backend, max_entries=1)
        for key, res in zip(keys, results):
            store.put(key, [res])
        # Only one key fits in memory; the rest read through to disk.
        for key, res in zip(keys, results):
            (back,) = store.get(key)
            assert_same(res, back)

    def test_stats_include_memory_substats(self, tmp_path, results, keys):
        backend = DiskStore(tmp_path / "s")
        store = ReadThroughStore(backend, max_entries=8)
        store.put(keys[0], [results[0]])
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["memory"]["max_entries"] == 8

    def test_wrapping_path_opens_backend(self, tmp_path, results, keys):
        ShardedBackend(tmp_path / "s")
        store = ReadThroughStore(tmp_path / "s", max_entries=8)
        assert isinstance(store.backend, ShardedBackend)
        store.put(keys[0], [results[0]])
        assert keys[0] in store
