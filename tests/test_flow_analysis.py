"""Whole-program flow analyses: call graph, provenance, taint, effects.

Fixture projects are dicts of synthetic ``src/repro/...`` paths to
module text; each analysis gets at least one true positive and one
clean negative, and the resolver gets targeted tests for aliased
imports, from-imports, inherited methods, and higher-order callables.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from textwrap import dedent

from repro.analysis.flow import (
    CallGraph,
    EffectInference,
    Project,
    extract_module,
)
from repro.analysis.lint.core import check_project_sources

REPO_ROOT = Path(__file__).resolve().parents[1]


def build_graph(sources: dict[str, str]) -> tuple[Project, CallGraph]:
    summaries = [
        extract_module(ast.parse(dedent(text)), path)
        for path, text in sorted(sources.items())
    ]
    project = Project(summaries)
    return project, CallGraph(project)


def flow_findings(sources: dict[str, str], rule: str) -> list:
    hits = [
        f
        for f in check_project_sources({p: dedent(s) for p, s in sources.items()})
        if f.rule == rule
    ]
    return [f for f in hits if not f.suppressed]


class TestCallGraph:
    def test_from_import_edge(self):
        _, graph = build_graph(
            {
                "src/repro/util.py": """
                    def helper(x):
                        return x + 1
                """,
                "src/repro/main.py": """
                    from repro.util import helper

                    def entry(v):
                        return helper(v)
                """,
            }
        )
        assert graph.edges["repro.main.entry"] == ["repro.util.helper"]

    def test_aliased_from_import_edge(self):
        _, graph = build_graph(
            {
                "src/repro/util.py": """
                    def helper(x):
                        return x
                """,
                "src/repro/main.py": """
                    from repro.util import helper as h

                    def entry(v):
                        return h(v)
                """,
            }
        )
        assert graph.edges["repro.main.entry"] == ["repro.util.helper"]

    def test_module_alias_dotted_call(self):
        _, graph = build_graph(
            {
                "src/repro/util.py": """
                    def helper(x):
                        return x
                """,
                "src/repro/main.py": """
                    import repro.util as u

                    def entry(v):
                        return u.helper(v)
                """,
            }
        )
        assert graph.edges["repro.main.entry"] == ["repro.util.helper"]

    def test_inherited_method_resolves_through_mro(self):
        _, graph = build_graph(
            {
                "src/repro/cls.py": """
                    class Base:
                        def ping(self):
                            return 1

                    class Child(Base):
                        def run(self):
                            return self.ping()
                """,
            }
        )
        assert graph.edges["repro.cls.Child.run"] == ["repro.cls.Base.ping"]

    def test_constructor_edge_goes_to_init(self):
        _, graph = build_graph(
            {
                "src/repro/cls.py": """
                    class Thing:
                        def __init__(self, n):
                            self.n = n

                    def make(n):
                        return Thing(n)
                """,
            }
        )
        assert graph.edges["repro.cls.make"] == ["repro.cls.Thing.__init__"]

    def test_higher_order_callable_edge(self):
        project, graph = build_graph(
            {
                "src/repro/hof.py": """
                    def work(v):
                        return v * 2

                    def apply(f, x):
                        return f(x)

                    def entry(x):
                        return apply(work, x)
                """,
            }
        )
        assert "repro.hof.work" in project.param_callables.get(
            ("repro.hof.apply", "f"), set()
        )
        assert "repro.hof.work" in graph.edges["repro.hof.apply"]

    def test_reachability(self):
        _, graph = build_graph(
            {
                "src/repro/chain.py": """
                    def a():
                        return b()

                    def b():
                        return c()

                    def c():
                        return 0

                    def unrelated():
                        return 1
                """,
            }
        )
        reach = graph.reachable_from(["repro.chain.a"])
        assert "repro.chain.c" in reach
        assert "repro.chain.unrelated" not in reach


class TestSeedProvenance:
    RULE = "flow-seed-provenance"

    def test_implicit_entropy_triggers(self):
        hits = flow_findings(
            {
                "src/repro/sim/x.py": """
                    import numpy as np

                    def run_x(n):
                        rng = np.random.default_rng()
                        return rng.random(n)
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1
        assert "entropy" in hits[0].message

    def test_hardcoded_literal_seed_triggers(self):
        hits = flow_findings(
            {
                "src/repro/sim/x.py": """
                    import numpy as np

                    def run_x(n):
                        rng = np.random.default_rng(1234)
                        return rng.random(n)
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1

    def test_literal_int_default_triggers(self):
        hits = flow_findings(
            {
                "src/repro/sim/x.py": """
                    import numpy as np

                    def run_x(n, seed=7):
                        rng = np.random.default_rng(seed)
                        return rng.random(n)
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1
        assert "literal int default" in hits[0].message

    def test_threaded_seed_is_clean(self):
        assert (
            flow_findings(
                {
                    "src/repro/sim/x.py": """
                        import numpy as np

                        def run_x(n, seed=None):
                            rng = np.random.default_rng(seed)
                            return rng.random(n)
                    """,
                },
                self.RULE,
            )
            == []
        )

    def test_interprocedural_seed_is_clean(self):
        # The helper's parameter is not seed-named; it is seed-derived
        # because every project call site binds it to one.
        assert (
            flow_findings(
                {
                    "src/repro/sim/x.py": """
                        import numpy as np

                        def _mk(s0):
                            return np.random.default_rng(s0)

                        def run_x(n, seed=None):
                            return _mk(seed).random(n)
                    """,
                },
                self.RULE,
            )
            == []
        )

    def test_spawned_children_are_clean(self):
        assert (
            flow_findings(
                {
                    "src/repro/sim/x.py": """
                        import numpy as np

                        def run_x(seed=None):
                            root = np.random.SeedSequence(seed)
                            return [np.random.default_rng(c) for c in root.spawn(3)]
                    """,
                },
                self.RULE,
            )
            == []
        )

    def test_unseeded_helper_param_triggers(self):
        hits = flow_findings(
            {
                "src/repro/sim/x.py": """
                    import numpy as np

                    def _mk(s0):
                        return np.random.default_rng(s0)

                    def run_x(n):
                        return _mk(n * 2).random()
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1


class TestDeterminismTaint:
    RULE = "flow-det-taint"

    KEYS_MODULE = """
        def task_key(payload):
            return str(payload)
    """

    def test_wallclock_into_store_key_triggers(self):
        hits = flow_findings(
            {
                "src/repro/store/keys.py": self.KEYS_MODULE,
                "src/repro/sim/y.py": """
                    import time

                    from repro.store.keys import task_key

                    def run_y():
                        t = time.time()
                        return task_key(t)
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1
        assert "wallclock" in hits[0].message

    def test_address_taint_through_helper_triggers(self):
        hits = flow_findings(
            {
                "src/repro/store/keys.py": self.KEYS_MODULE,
                "src/repro/sim/y.py": """
                    from repro.store.keys import task_key

                    def _label(obj):
                        return id(obj)

                    def run_y(obj):
                        return task_key(_label(obj))
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1

    def test_sorted_set_is_clean(self):
        assert (
            flow_findings(
                {
                    "src/repro/store/keys.py": self.KEYS_MODULE,
                    "src/repro/sim/y.py": """
                        from repro.store.keys import task_key

                        def run_y(names):
                            pending = {n for n in names}
                            return task_key(sorted(pending))
                    """,
                },
                self.RULE,
            )
            == []
        )

    def test_materialized_set_order_triggers(self):
        hits = flow_findings(
            {
                "src/repro/store/keys.py": self.KEYS_MODULE,
                "src/repro/sim/y.py": """
                    from repro.store.keys import task_key

                    def run_y(names):
                        pending = {n for n in names}
                        return task_key(list(pending))
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1
        assert "set" in hits[0].message


class TestEffects:
    RULE = "flow-effects"

    def test_io_in_key_module_violates_contract(self):
        hits = flow_findings(
            {
                "src/repro/store/keys.py": """
                    def task_key(payload):
                        with open("/tmp/keys.log", "a") as fh:
                            fh.write(str(payload))
                        return str(payload)
                """,
            },
            self.RULE,
        )
        assert len(hits) == 1
        assert "io" in hits[0].message

    def test_pure_key_module_is_clean(self):
        assert (
            flow_findings(
                {
                    "src/repro/store/keys.py": """
                        import hashlib

                        def task_key(payload):
                            return hashlib.sha256(payload.encode()).hexdigest()
                    """,
                },
                self.RULE,
            )
            == []
        )

    def test_inferred_manifest_lists_impure_functions(self):
        project, graph = build_graph(
            {
                "src/repro/eff.py": """
                    import time

                    def stamp():
                        return time.time()

                    def caller():
                        return stamp()

                    def pure(x):
                        return x + 1
                """,
            }
        )
        inf = EffectInference(project, graph)
        manifest = inf.manifest()
        assert manifest["repro.eff.stamp"] == ["time"]
        assert manifest["repro.eff.caller"] == ["time"]
        assert "repro.eff.pure" not in manifest

    def test_rng_effect_from_generator_draws(self):
        project, graph = build_graph(
            {
                "src/repro/eff.py": """
                    def draw(rng):
                        return rng.normal()
                """,
            }
        )
        manifest = EffectInference(project, graph).manifest()
        assert manifest["repro.eff.draw"] == ["rng"]


class TestCommittedManifest:
    def test_committed_effects_manifest_matches_inference(self):
        """The committed manifest must track inference exactly (the CI
        drift gate); this also pins the file's existence."""
        from repro.analysis.flow.rules import (
            EFFECTS_MANIFEST_NAME,
            effects_manifest_for_paths,
        )

        manifest_path = REPO_ROOT / EFFECTS_MANIFEST_NAME
        assert manifest_path.exists(), "effects-manifest.json must be committed"
        committed = json.loads(manifest_path.read_text(encoding="utf-8"))
        inferred = effects_manifest_for_paths(
            [str(REPO_ROOT / "src")], root=REPO_ROOT, use_cache=False
        )
        assert committed == inferred, (
            "effects-manifest.json is stale; regenerate with "
            "`python -m repro.analysis src --write-effects`"
        )
