"""``norm_ppf`` against scipy's reference implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.utils.stats import norm_ppf


class TestAgainstScipy:
    def test_dense_grid_within_1e9(self):
        qs = np.linspace(1e-6, 1.0 - 1e-6, 20001)
        ours = np.array([norm_ppf(q) for q in qs])
        ref = norm.ppf(qs)
        assert np.max(np.abs(ours - ref)) < 1e-9

    @pytest.mark.parametrize(
        "q", [1e-300, 1e-15, 1e-9, 0.02425, 0.5, 0.95, 0.975, 0.995, 1 - 1e-12]
    )
    def test_spot_values(self, q):
        assert norm_ppf(q) == pytest.approx(float(norm.ppf(q)), abs=1e-9, rel=1e-12)

    def test_deep_tails(self):
        for q in (1e-100, 1e-200, 1.0 - 1e-16):
            assert norm_ppf(q) == pytest.approx(float(norm.ppf(q)), rel=1e-9)

    def test_confidence_interval_z_values(self):
        # The values half_width actually uses.
        assert norm_ppf(0.975) == pytest.approx(1.959963984540054, abs=1e-12)
        assert norm_ppf(0.995) == pytest.approx(2.5758293035489004, abs=1e-12)


class TestEdges:
    def test_boundaries_are_infinite(self):
        assert norm_ppf(0.0) == -math.inf
        assert norm_ppf(1.0) == math.inf

    def test_symmetry(self):
        for q in (0.01, 0.2, 0.4):
            assert norm_ppf(q) == pytest.approx(-norm_ppf(1.0 - q), abs=1e-12)

    def test_median_is_zero(self):
        assert norm_ppf(0.5) == pytest.approx(0.0, abs=1e-15)

    @pytest.mark.parametrize("q", [-0.1, 1.1, float("nan")])
    def test_invalid_raises(self, q):
        with pytest.raises(ValueError):
            norm_ppf(q)


class TestHalfWidthIntegration:
    def test_half_width_matches_scipy_formula(self):
        from repro.sim.results import AggregateResult

        samples = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        agg = AggregateResult(name="m", samples=samples, confidence=0.95)
        z = float(norm.ppf(0.975))
        expected = z * float(np.std(samples, ddof=1)) / math.sqrt(5)
        assert agg.half_width == pytest.approx(expected, rel=1e-12)

    def test_half_width_needs_no_scipy_at_runtime(self, monkeypatch):
        """The old implementation lazily imported ``scipy.stats`` inside
        the property; the replacement must survive scipy being
        unimportable at evaluation time."""
        import sys

        from repro.sim.results import AggregateResult

        monkeypatch.setitem(sys.modules, "scipy", None)
        monkeypatch.setitem(sys.modules, "scipy.stats", None)
        agg = AggregateResult(name="m", samples=np.array([1.0, 2.0, 3.0]))
        assert math.isfinite(agg.half_width)


class TestGammaln:
    """``gammaln`` against scipy's reference (equivalence <= 1e-12)."""

    def test_integer_arguments_match_scipy(self):
        from scipy.special import gammaln as sp_gammaln

        from repro.utils.stats import gammaln

        x = np.arange(0, 5001, dtype=float) + 1.0
        err = np.abs(gammaln(x) - sp_gammaln(x)) / np.maximum(1.0, np.abs(sp_gammaln(x)))
        assert float(err.max()) <= 1e-12

    def test_real_arguments_match_scipy(self):
        from scipy.special import gammaln as sp_gammaln

        from repro.utils.stats import gammaln

        rng = np.random.default_rng(20260806)
        x = np.concatenate(
            [
                rng.uniform(1e-12, 2.0, 5000),
                rng.uniform(2.0, 100.0, 5000),
                rng.uniform(100.0, 1e7, 5000),
                rng.uniform(-50.0, -0.51, 5000),  # negative non-integers
            ]
        )
        ours, ref = gammaln(x), sp_gammaln(x)
        err = np.abs(ours - ref) / np.maximum(1.0, np.abs(ref))
        assert float(np.nanmax(err)) <= 1e-12

    def test_poles_and_specials(self):
        from scipy.special import gammaln as sp_gammaln

        from repro.utils.stats import gammaln

        for pole in (0.0, -1.0, -2.0, -17.0):
            assert gammaln(pole) == math.inf == float(sp_gammaln(pole))
        assert gammaln(math.inf) == math.inf
        assert math.isnan(gammaln(math.nan))

    def test_scalar_in_scalar_out(self):
        from repro.utils.stats import gammaln

        out = gammaln(5.0)
        assert isinstance(out, float)
        assert out == pytest.approx(math.lgamma(5.0), rel=1e-14)

    def test_matches_stdlib_lgamma(self):
        """Tie-break reference that needs no scipy at all."""
        from repro.utils.stats import gammaln

        xs = np.linspace(0.1, 300.0, 4001)
        ours = gammaln(xs)
        ref = np.array([math.lgamma(float(v)) for v in xs])
        assert float(np.max(np.abs(ours - ref) / np.maximum(1.0, np.abs(ref)))) <= 1e-13

    def test_collision_modules_need_no_scipy_at_runtime(self, monkeypatch):
        """The collision kernels must import and run with scipy absent."""
        import importlib
        import sys

        for mod in [m for m in sys.modules if m == "scipy" or m.startswith("scipy.")]:
            monkeypatch.setitem(sys.modules, mod, None)
        import repro.collision.carrier
        import repro.collision.poisson
        import repro.collision.slots

        importlib.reload(repro.collision.slots)
        importlib.reload(repro.collision.poisson)
        importlib.reload(repro.collision.carrier)
        from repro.collision.slots import mu_exact

        assert mu_exact(1, 4) == 1.0
