"""Cross-engine bit-identity of the replication-batched engine.

The acceptance oracle of the batched path: for every replication ``r``,
``run_broadcast_batch(policy, config, seeds)[r]`` must equal
``run_broadcast(policy, config, seeds[r])`` bit for bit — and, since
the per-run engine is pinned against the DES reference elsewhere and
again here, the chain extends to :class:`repro.sim.desimpl`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.network.deployment import DiskDeployment
from repro.protocols.area import DistanceBasedRelay
from repro.protocols.base import RelayPolicy
from repro.protocols.counter import CounterBasedRelay
from repro.protocols.neighbor import NeighborKnowledgeRelay
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast, run_broadcast_batch

SEED = 20050113
R = 6


def assert_identical(a, b) -> None:
    """Field-by-field equality (``metrics`` excluded by design)."""
    assert np.array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    assert np.array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.n_field_nodes == b.n_field_nodes
    assert a.collisions == b.collisions
    assert a.total_tx == b.total_tx
    assert a.total_rx == b.total_rx
    assert a.seed_entropy == b.seed_entropy
    assert np.array_equal(a.informed_mask, b.informed_mask)
    assert np.array_equal(a.trace.new_by_phase_ring, b.trace.new_by_phase_ring)
    assert np.array_equal(a.trace.broadcasts_by_phase, b.trace.broadcasts_by_phase)
    assert a.trace.config == b.trace.config


def _config(**kw) -> SimulationConfig:
    return SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3), max_phases=40, **kw
    )


def _seeds(n=R):
    return np.random.SeedSequence(SEED).spawn(n)


CHANNEL_CASES = [
    dict(),
    dict(channel="cfm"),
    dict(carrier_sense=True),
]


class DeterministicRelay(RelayPolicy):
    """Always relay, slot derived from the node id — no coin flips, so
    the slot-stepper and the DES engine consume RNG identically and
    must coincide run for run (the repo's cross-engine contract, see
    ``tests/test_obs_agreement.py``)."""

    name = "deterministic"

    def schedule(self, new_nodes, senders, rng, ctx):
        nodes = np.asarray(new_nodes)
        return np.ones(len(nodes), dtype=bool), (nodes * 7 + 3) % ctx.slots_per_phase


class TestBitIdentity:
    @pytest.mark.parametrize(
        "cfg_kw", CHANNEL_CASES, ids=["cam", "cfm", "cam-cs"]
    )
    def test_flooding_matches_per_run(self, cfg_kw):
        cfg = _config(**cfg_kw)
        seeds = _seeds()
        batch = run_broadcast_batch(SimpleFlooding(), cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(batch[r], run_broadcast(SimpleFlooding(), cfg, seed))

    @pytest.mark.parametrize(
        "cfg_kw", CHANNEL_CASES, ids=["cam", "cfm", "cam-cs"]
    )
    def test_pb_matches_per_run(self, cfg_kw):
        cfg = _config(**cfg_kw)
        seeds = _seeds()
        batch = run_broadcast_batch(ProbabilisticRelay(0.4), cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(
                batch[r], run_broadcast(ProbabilisticRelay(0.4), cfg, seed)
            )

    @pytest.mark.parametrize(
        "policy",
        [CounterBasedRelay(2), NeighborKnowledgeRelay(), DistanceBasedRelay(0.5)],
        ids=["counter", "neighbor", "distance"],
    )
    def test_stateful_policies_match_per_run(self, policy):
        """Policies that consult duplicates, overheard senders, or node
        positions must see exactly the per-run local view."""
        cfg = _config()
        seeds = _seeds()
        batch = run_broadcast_batch(policy, cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(batch[r], run_broadcast(policy, cfg, seed))

    def test_half_duplex_matches_per_run(self):
        cfg = _config(half_duplex=True)
        seeds = _seeds()
        batch = run_broadcast_batch(SimpleFlooding(), cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(batch[r], run_broadcast(SimpleFlooding(), cfg, seed))

    def test_poisson_population_matches_per_run(self):
        """Ragged per-replication populations exercise the offsets."""
        cfg = _config(population="poisson")
        seeds = _seeds()
        batch = run_broadcast_batch(ProbabilisticRelay(0.5), cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(
                batch[r], run_broadcast(ProbabilisticRelay(0.5), cfg, seed)
            )

    def test_max_phases_truncation_matches_per_run(self):
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3), max_phases=2
        )
        seeds = _seeds()
        batch = run_broadcast_batch(SimpleFlooding(), cfg, seeds)
        for r, seed in enumerate(seeds):
            assert_identical(batch[r], run_broadcast(SimpleFlooding(), cfg, seed))

    def test_shared_deployments_match_per_run(self):
        """Common-random-numbers mode: deployments passed in, rng only
        drives the protocol decisions."""
        cfg = _config()
        rng = np.random.default_rng(5)
        deps = [DiskDeployment.sample(rho=20, n_rings=3, rng=rng) for _ in range(4)]
        seeds = _seeds(4)
        batch = run_broadcast_batch(
            ProbabilisticRelay(0.3), cfg, seeds, deployments=deps
        )
        for r, seed in enumerate(seeds):
            assert_identical(
                batch[r],
                run_broadcast(ProbabilisticRelay(0.3), cfg, seed, deployment=deps[r]),
            )

    def test_single_replication_block(self):
        cfg = _config()
        assert_identical(
            run_broadcast_batch(SimpleFlooding(), cfg, [42])[0],
            run_broadcast(SimpleFlooding(), cfg, 42),
        )

    @pytest.mark.parametrize("carrier_sense", [False, True], ids=["plain", "carrier"])
    def test_matches_des_reference(self, carrier_sense):
        """The chain closes: batch == per-run == DES.  Cross-engine
        identity with the continuous-time reference holds under the
        repo's contract — deterministic policy, shared deployment."""
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=6.0, slots=8),
            carrier_sense=carrier_sense,
            max_phases=12,
        )
        rng = np.random.default_rng(1000)
        deps = [
            DiskDeployment.sample(rho=cfg.rho, n_rings=cfg.n_rings, rng=rng)
            for _ in range(3)
        ]
        seeds = [7, 11, 1234]
        batch = run_broadcast_batch(
            DeterministicRelay(), cfg, seeds, deployments=deps
        )
        for r, seed in enumerate(seeds):
            des = DesBroadcastSimulation(
                DeterministicRelay(), cfg, seed, deployment=deps[r]
            ).run()
            assert batch[r].reachability == des.reachability
            assert batch[r].total_tx == des.total_tx
            assert batch[r].total_rx == des.total_rx
            k = min(
                len(batch[r].new_informed_by_slot), len(des.new_informed_by_slot)
            )
            assert np.array_equal(
                batch[r].new_informed_by_slot[:k], des.new_informed_by_slot[:k]
            )
            assert int(batch[r].new_informed_by_slot[k:].sum()) == 0
            assert int(des.new_informed_by_slot[k:].sum()) == 0


class TestValidation:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_broadcast_batch(SimpleFlooding(), _config(), [])

    def test_n_reps_mismatch_rejected(self):
        with pytest.raises(ValueError, match="n_reps"):
            run_broadcast_batch(SimpleFlooding(), _config(), [1, 2], n_reps=3)

    def test_n_reps_match_accepted(self):
        results = run_broadcast_batch(SimpleFlooding(), _config(), [1, 2], n_reps=2)
        assert len(results) == 2

    def test_deployments_misaligned_rejected(self):
        rng = np.random.default_rng(0)
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        with pytest.raises(ValueError, match="must align"):
            run_broadcast_batch(
                SimpleFlooding(), _config(), [1, 2], deployments=[dep]
            )
