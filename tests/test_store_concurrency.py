"""Concurrent writers on one sharded store: flock, crashes, recovery."""

import multiprocessing
import os

import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import _execute
from repro.store import FileLock, ShardedBackend, open_store, run_tasks, task_key
from repro.utils.rng import as_seed_sequence

fcntl = pytest.importorskip("fcntl")

CFG = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


def _make_tasks(p: float, seed: int, n: int):
    policy = ProbabilisticRelay(p)
    children = as_seed_sequence(seed).spawn(n)
    tasks = [(policy, CFG, child, "vector", "phase", None) for child in children]
    keys = [task_key(policy, CFG, child, "vector", "phase") for child in children]
    return tasks, keys


def _writer(root, specs, barrier):
    store = ShardedBackend(root)
    tasks, keys = [], []
    for p, seed, n in specs:
        t, k = _make_tasks(p, seed, n)
        tasks.extend(t)
        keys.extend(k)
    barrier.wait()  # maximise interleaving: both writers start together
    run_tasks(_execute, tasks, keys, store=store)
    store.flush_index()


def _lock_holder(path, acquired, release):
    lock = FileLock(path)
    with lock:
        acquired.set()
        release.wait(timeout=30)


class TestConcurrentWriters:
    def test_two_schedulers_one_store_no_lost_entries(self, tmp_path):
        """Acceptance test: two interleaved writers, nothing lost or torn."""
        root = tmp_path / "s"
        ShardedBackend(root)  # write the marker before forking
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        # Overlapping work: both write (0.5, seed 7); each adds its own.
        specs = [
            [(0.5, 7, 4), (0.3, 11, 4)],
            [(0.5, 7, 4), (0.7, 13, 4)],
        ]
        procs = [
            ctx.Process(target=_writer, args=(root, spec, barrier))
            for spec in specs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = open_store(root)
        _, keys_shared = _make_tasks(0.5, 7, 4)
        _, keys_a = _make_tasks(0.3, 11, 4)
        _, keys_b = _make_tasks(0.7, 13, 4)
        for key in keys_shared + keys_a + keys_b:
            assert key in store
            assert store.get(key)  # unpacks → checksums verified
        assert store.verify() == []
        # Shard journals recorded every surviving entry.
        journalled = set()
        for journal in store._journals.values():
            for entry in journal.entries():
                journalled.add(entry["key"])
        assert set(keys_shared + keys_a + keys_b) <= journalled

    def test_same_tasks_from_both_writers_bit_identical(self, tmp_path):
        """Two writers race on IDENTICAL keys; last write is still valid."""
        root = tmp_path / "s"
        ShardedBackend(root)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_writer, args=(root, [(0.5, 7, 6)], barrier))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = open_store(root)
        tasks, keys = _make_tasks(0.5, 7, 6)
        for task, key in zip(tasks, keys):
            (stored,) = store.get(key)
            fresh = _execute(task)
            assert stored.seed_entropy == fresh.seed_entropy
            assert (
                stored.new_informed_by_slot.tolist()
                == fresh.new_informed_by_slot.tolist()
            )
        assert store.verify() == []


class TestFlockAcrossProcesses:
    def test_lock_excludes_other_process(self, tmp_path):
        path = tmp_path / ".lock"
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        proc = ctx.Process(target=_lock_holder, args=(path, acquired, release))
        proc.start()
        try:
            assert acquired.wait(timeout=30)
            fd = os.open(path, os.O_RDWR)
            try:
                with pytest.raises(BlockingIOError):
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            finally:
                os.close(fd)
        finally:
            release.set()
            proc.join(timeout=30)
        assert proc.exitcode == 0
        # Released now: acquiring from this process succeeds.
        with FileLock(path):
            pass


class TestCrashRecovery:
    def test_torn_journal_and_stale_tmp_recoverable(self, tmp_path):
        """A writer killed mid-append leaves a torn line + tmp litter."""
        store = ShardedBackend(tmp_path / "s")
        tasks, keys = _make_tasks(0.5, 7, 4)
        for task, key in zip(tasks, keys):
            store.put(key, [_execute(task)])
        store.flush_index()
        # Crash artifacts: torn final journal line, orphaned tmp object.
        seg = store.shard_journal(keys[0]).segments()[-1]
        with seg.open("a") as fh:
            fh.write('{"op": "put", "key": "dead')  # no newline — torn
        tmp = store.path_for(keys[0]).with_suffix(".json.tmp")
        tmp.write_text("partial write")
        reopened = open_store(tmp_path / "s")
        assert sorted(reopened.keys()) == sorted(keys)
        assert reopened.verify() == []
        survivors = [
            e["key"] for e in reopened.shard_journal(keys[0]).entries()
        ]
        assert "dead" not in "".join(survivors)
        for key in keys:
            assert reopened.get(key)

    def test_index_rebuild_after_crash(self, tmp_path):
        """Losing every shard index is recoverable from the objects."""
        store = ShardedBackend(tmp_path / "s")
        tasks, keys = _make_tasks(0.5, 7, 4)
        for task, key in zip(tasks, keys):
            store.put(key, [_execute(task)])
        store.flush_index()
        for shard in store.shards.values():
            index = shard.root / "index.json"
            if index.exists():
                index.unlink()
        reopened = open_store(tmp_path / "s")
        reopened.rebuild_index()
        assert sorted(reopened.keys()) == sorted(keys)
