"""run_tasks: hit/miss logic, crash safety, retries, structured errors."""

import hashlib

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import SchedulerError
from repro.obs import metrics as obs_metrics
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore, run_tasks, sweep_key


@pytest.fixture
def results():
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    return replicate(ProbabilisticRelay(0.5), cfg, 4, seed=7)


@pytest.fixture
def store(tmp_path):
    return DiskStore(tmp_path / "store")


TASKS = [0, 1, 2, 3]
KEYS = [hashlib.sha256(f"task-{i}".encode()).hexdigest() for i in TASKS]


class CountingExecute:
    """Serial-path executor: returns canned results, counts calls."""

    def __init__(self, results, fail_indices=(), fail_times=0):
        self.results = results
        self.calls = []
        self.fail_indices = set(fail_indices)
        self.fail_times = fail_times
        self.failed = {}

    def __call__(self, task):
        self.calls.append(task)
        if task in self.fail_indices:
            n = self.failed.get(task, 0)
            if self.fail_times < 0 or n < self.fail_times:
                self.failed[task] = n + 1
                raise RuntimeError(f"task {task} exploded")
        return self.results[task]


def assert_same(a, b):
    np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
    np.testing.assert_array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
    assert a.seed_entropy == b.seed_entropy


class TestColdAndWarm:
    def test_cold_run_executes_and_persists_everything(self, store, results):
        ex = CountingExecute(results)
        out = run_tasks(ex, TASKS, KEYS, store=store)
        assert ex.calls == TASKS
        for a, b in zip(results, out, strict=True):
            assert_same(a, b)
        assert all(k in store for k in KEYS)
        journal = store.journals_dir / f"{sweep_key(KEYS)}.jsonl"
        assert journal.exists()
        assert len(journal.read_text().splitlines()) == 1 + len(TASKS)

    def test_warm_run_executes_nothing(self, store, results):
        run_tasks(CountingExecute(results), TASKS, KEYS, store=store)
        ex = CountingExecute(results)
        out = run_tasks(ex, TASKS, KEYS, store=store)
        assert ex.calls == []
        for a, b in zip(results, out, strict=True):
            assert_same(a, b)

    def test_without_store_plain_execution(self, results):
        ex = CountingExecute(results)
        out = run_tasks(ex, TASKS, KEYS, store=None)
        assert ex.calls == TASKS and len(out) == 4

    def test_mismatched_lengths_rejected(self, store, results):
        with pytest.raises(ValueError):
            run_tasks(CountingExecute(results), TASKS, KEYS[:2], store=store)

    def test_hit_miss_counters(self, store, results):
        run_tasks(CountingExecute(results), TASKS[:2], KEYS[:2], store=store)
        with obs_metrics.collect() as reg:
            run_tasks(CountingExecute(results), TASKS, KEYS, store=store)
            snap = reg.snapshot()
        assert snap["store.hits"] == 2
        assert snap["store.misses"] == 2
        assert snap["store.puts"] == 2


class TestCorruption:
    def test_corrupt_entry_recomputed_not_served(self, store, results):
        run_tasks(CountingExecute(results), TASKS, KEYS, store=store)
        store.path_for(KEYS[1]).write_text("garbage")
        ex = CountingExecute(results)
        out = run_tasks(ex, TASKS, KEYS, store=store)
        assert ex.calls == [1]  # only the corrupted entry recomputes
        for a, b in zip(results, out, strict=True):
            assert_same(a, b)
        assert store.verify() == []  # healthy again


class TestFailures:
    def test_transient_failure_retried(self, store, results):
        ex = CountingExecute(results, fail_indices=(2,), fail_times=1)
        out = run_tasks(ex, TASKS, KEYS, store=store, retries=1)
        assert len(out) == 4
        assert_same(out[2], results[2])
        assert ex.calls.count(2) == 2

    def test_persistent_failure_raises_scheduler_error(self, store, results):
        ex = CountingExecute(results, fail_indices=(2,), fail_times=-1)
        with pytest.raises(SchedulerError) as err:
            run_tasks(ex, TASKS, KEYS, store=store, retries=1)
        (index, key, exc) = err.value.failures[0]
        assert index == 2 and key == KEYS[2]
        assert isinstance(exc, RuntimeError)
        assert "resume=True" in str(err.value)
        # Siblings are persisted despite the failure.
        assert all(k in store for i, k in enumerate(KEYS) if i != 2)
        assert KEYS[2] not in store

    def test_resume_after_failure_executes_only_the_failure(self, store, results):
        with pytest.raises(SchedulerError):
            run_tasks(
                CountingExecute(results, fail_indices=(2,), fail_times=-1),
                TASKS,
                KEYS,
                store=store,
                retries=0,
            )
        ex = CountingExecute(results)  # "fixed code"
        out = run_tasks(ex, TASKS, KEYS, store=store, resume=True)
        assert ex.calls == [2]
        for a, b in zip(results, out, strict=True):
            assert_same(a, b)

    def test_failure_without_store_still_structured(self, results):
        ex = CountingExecute(results, fail_indices=(0,), fail_times=-1)
        with pytest.raises(SchedulerError):
            run_tasks(ex, TASKS, KEYS, store=None, retries=0)


class TestTraceEvents:
    def test_store_accesses_traced(self, store, results):
        from repro.obs import trace as obs_trace
        from repro.obs.events import StoreAccess

        with obs_trace.capture() as buf:
            run_tasks(CountingExecute(results), TASKS, KEYS, store=store)
        events = [e for e in buf.events if isinstance(e, StoreAccess)]
        assert {e.op for e in events} == {"miss", "put"}
        assert sum(e.op == "put" for e in events) == len(TASKS)
        with obs_trace.capture() as buf:
            run_tasks(CountingExecute(results), TASKS, KEYS, store=store)
        hits = [e for e in buf.events if isinstance(e, StoreAccess)]
        assert all(e.op == "hit" for e in hits) and len(hits) == len(TASKS)


class TestProgress:
    def test_progress_counts_hits_and_completions(self, store, results):
        run_tasks(CountingExecute(results), TASKS[:2], KEYS[:2], store=store)
        seen = []
        run_tasks(
            CountingExecute(results),
            TASKS,
            KEYS,
            store=store,
            progress=lambda done, total, chunk: seen.append((done, total)),
        )
        assert seen[0] == (2, 4)  # hits reported first
        assert seen[-1] == (4, 4)


class TestBackoff:
    def test_retry_sleeps_follow_exponential_schedule(
        self, store, results, monkeypatch
    ):
        from repro.store import scheduler

        sleeps = []
        monkeypatch.setattr(scheduler.time, "sleep", sleeps.append)
        ex = CountingExecute(results, fail_indices=(2,), fail_times=2)
        run_tasks(ex, TASKS, KEYS, store=store, retries=2, backoff=0.1)
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_no_sleep_on_first_attempt_or_success(
        self, store, results, monkeypatch
    ):
        from repro.store import scheduler

        sleeps = []
        monkeypatch.setattr(scheduler.time, "sleep", sleeps.append)
        run_tasks(CountingExecute(results), TASKS, KEYS, store=store, retries=3)
        assert sleeps == []

    def test_scheduler_error_carries_attempt_count(
        self, store, results, monkeypatch
    ):
        from repro.store import scheduler

        monkeypatch.setattr(scheduler.time, "sleep", lambda _s: None)
        ex = CountingExecute(results, fail_indices=(2,), fail_times=-1)
        with pytest.raises(SchedulerError) as err:
            run_tasks(ex, TASKS, KEYS, store=store, retries=2, backoff=0.1)
        assert err.value.attempts == 3
        assert "3 attempts" in str(err.value)
        assert "backoff" in str(err.value)
        assert ex.calls.count(2) == 3

    def test_zero_retries_attempts_once(self, store, results, monkeypatch):
        from repro.store import scheduler

        sleeps = []
        monkeypatch.setattr(scheduler.time, "sleep", sleeps.append)
        ex = CountingExecute(results, fail_indices=(2,), fail_times=-1)
        with pytest.raises(SchedulerError) as err:
            run_tasks(ex, TASKS, KEYS, store=store, retries=0)
        assert err.value.attempts == 1
        assert sleeps == []
