"""TDMA slot assignment: coloring validity and collision-free flooding."""

import numpy as np
import pytest

from repro.models.tdma import (
    TdmaSchedule,
    distance2_coloring,
    run_tdma_flooding,
)
from repro.network.deployment import DiskDeployment
from repro.network.topology import Topology


def line_deployment(n=6, spacing=0.9):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return DiskDeployment(positions=pos, radius=1.0, n_rings=6)


class TestColoring:
    def test_valid_on_random_deployments(self, rng):
        dep = DiskDeployment.sample(rho=15, n_rings=3, rng=rng)
        topo = dep.topology()
        sched = TdmaSchedule.build(topo)
        assert sched.is_valid(topo)

    def test_line_needs_three_colors(self):
        topo = line_deployment().topology()
        colors = distance2_coloring(topo)
        # On a path, distance-2 coloring needs exactly 3 colors.
        assert colors.max() + 1 == 3

    def test_color_count_scales_with_density(self):
        counts = []
        for rho in (8, 25):
            dep = DiskDeployment.sample(
                rho=rho, n_rings=3, rng=np.random.default_rng(0)
            )
            counts.append(TdmaSchedule.build(dep.topology()).n_slots)
        assert counts[1] > counts[0]

    def test_color_count_at_least_max_two_hop_clique(self, rng):
        dep = DiskDeployment.sample(rho=12, n_rings=2, rng=rng)
        topo = dep.topology()
        sched = TdmaSchedule.build(topo)
        # Lower bound: a node and its neighbors are pairwise within 2 hops.
        assert sched.n_slots >= topo.degrees.max() + 1

    def test_invalid_schedule_detected(self):
        topo = line_deployment().topology()
        bad = TdmaSchedule(slots=np.zeros(topo.n_nodes, dtype=np.int64), n_slots=1)
        assert not bad.is_valid(topo)

    def test_isolated_nodes_colored(self):
        pos = np.array([[0.0, 0.0], [0.9, 0.0], [3.0, 0.0]])
        topo = Topology(pos, radius=1.0)
        colors = distance2_coloring(topo)
        assert np.all(colors >= 0)


class TestTdmaFlooding:
    def test_zero_collisions(self, rng):
        dep = DiskDeployment.sample(rho=15, n_rings=3, rng=rng)
        res = run_tdma_flooding(dep)
        assert res.collisions == 0

    def test_full_reachability_on_connected(self, rng):
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        if not dep.topology().is_connected():
            pytest.skip("rare disconnected draw")
        res = run_tdma_flooding(dep)
        assert res.reachability == 1.0

    def test_each_node_broadcasts_once(self, rng):
        dep = DiskDeployment.sample(rho=15, n_rings=3, rng=rng)
        res = run_tdma_flooding(dep)
        informed = int(round(res.reachability * dep.n_field_nodes))
        assert res.broadcasts == informed + 1  # + the source

    def test_line_latency(self):
        dep = line_deployment()
        res = run_tdma_flooding(dep)
        assert res.reachability == 1.0
        assert res.frame_length == 3
        # At least one slot per hop (5 hops); how many frames that takes
        # depends on whether colors happen to ascend along the path.
        assert res.latency_slots >= 5

    def test_invalid_schedule_produces_collisions(self):
        # Diamond: source 0 informs leaves 1 and 2 in frame 0; with
        # everyone in slot 0, the leaves then transmit simultaneously and
        # target 3 (in range of both, not of 0) hears only collisions.
        pos = np.array([[0.0, 0.0], [-0.8, 0.5], [0.8, 0.5], [0.0, 1.2]])
        dep = DiskDeployment(positions=pos, radius=1.0, n_rings=2)
        topo = dep.topology()
        bad = TdmaSchedule(slots=np.zeros(topo.n_nodes, dtype=np.int64), n_slots=1)
        res = run_tdma_flooding(dep, schedule=bad)
        assert res.collisions > 0
        assert res.reachability < 1.0

    def test_cfm_cost_tradeoff_visible(self):
        """The CFM 'hidden cost': frame length (latency unit) grows with
        density even though the broadcast count stays N+1."""
        results = []
        for rho in (8, 25):
            dep = DiskDeployment.sample(
                rho=rho, n_rings=3, rng=np.random.default_rng(1)
            )
            results.append(run_tdma_flooding(dep))
        assert results[1].frame_length > results[0].frame_length
