"""Ring partition: the paper's A(x, k) and B(x, k) area families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rings import RingPartition
from repro.geometry.sampling import sample_disk


@pytest.fixture
def part():
    return RingPartition(n_rings=5, radius=1.0)


class TestBasics:
    def test_ring_areas_formula(self, part):
        # C_k = pi r^2 (2k - 1)
        for k in range(1, 6):
            assert part.ring_area(k) == pytest.approx(np.pi * (2 * k - 1))

    def test_ring_areas_sum_to_field(self, part):
        assert part.ring_areas.sum() == pytest.approx(part.field_area)

    def test_ring_area_out_of_range(self, part):
        with pytest.raises(ValueError):
            part.ring_area(0)
        with pytest.raises(ValueError):
            part.ring_area(6)

    def test_ring_of(self, part):
        assert part.ring_of(0.0) == 1
        assert part.ring_of(0.5) == 1
        assert part.ring_of(1.0) == 1
        assert part.ring_of(1.0001) == 2
        assert part.ring_of(4.7) == 5

    def test_ring_of_vectorized(self, part):
        out = part.ring_of(np.array([0.2, 2.5, 4.99]))
        assert list(out) == [1, 3, 5]

    def test_ring_of_outside_field(self, part):
        with pytest.raises(ValueError):
            part.ring_of(5.5)

    def test_non_unit_radius(self):
        p = RingPartition(3, radius=2.0)
        assert p.field_radius == 6.0
        assert p.ring_area(2) == pytest.approx(np.pi * 4.0 * 3)


class TestTransmissionAreas:
    def test_partition_of_disk_interior_rings(self, part):
        x = np.linspace(0.0, 1.0, 9)
        for j in range(1, 5):  # j = 5 loses area outside the field
            A = part.transmission_areas(j, x)
            assert A.shape == (9, 3)
            assert np.all(A >= -1e-12)
            np.testing.assert_allclose(A.sum(axis=-1), np.pi, atol=1e-9)

    def test_outermost_ring_loses_outside_area(self, part):
        A = part.transmission_areas(5, np.array([0.9]))
        assert A.sum() < np.pi  # part of the disk hangs outside the field

    def test_inner_ring_has_no_ring_zero(self, part):
        A = part.transmission_areas(1, np.array([0.0, 0.5, 1.0]))
        np.testing.assert_allclose(A[:, 0], 0.0, atol=1e-12)

    def test_center_of_field_covered_by_ring_one(self, part):
        # A node at the exact center: its whole disk is ring 1.
        A = part.transmission_areas(1, np.array([0.0]))
        assert A[0, 1] == pytest.approx(np.pi)

    def test_monte_carlo_agreement(self, part, rng):
        # Validate A(x, k) against sampling for a node in ring 3.
        j, x = 3, 0.37
        radial = (j - 1) + x
        pts = sample_disk(200_000, 1.0, rng, center=(radial, 0.0))
        dist = np.hypot(pts[:, 0], pts[:, 1])
        A = part.transmission_areas(j, np.array([x]))[0]
        for offset, k in enumerate((j - 1, j, j + 1)):
            frac = ((dist > k - 1) & (dist <= k)).mean()
            assert A[offset] == pytest.approx(frac * np.pi, abs=0.02)

    def test_x_out_of_bounds(self, part):
        with pytest.raises(ValueError):
            part.transmission_areas(2, np.array([1.5]))

    def test_bad_ring_index(self, part):
        with pytest.raises(ValueError):
            part.transmission_areas(0, np.array([0.5]))


class TestCarrierAreas:
    def test_full_coverage_with_transmission_areas(self, part):
        # For a deep-interior node, A-window + B-window tile the 2r disk.
        x = np.linspace(0.0, 1.0, 5)
        B = part.carrier_areas(3, x)
        A = part.transmission_areas(3, x)
        total = B.sum(axis=-1) + A.sum(axis=-1)
        np.testing.assert_allclose(total, np.pi * 4.0, atol=1e-9)

    def test_window_indices(self, part):
        assert part.carrier_window(3) == [1, 2, 3, 4, 5]

    def test_custom_carrier_radius(self, part):
        B15 = part.carrier_areas(3, np.array([0.5]), carrier_radius=1.5)
        A = part.transmission_areas(3, np.array([0.5]))
        assert B15.sum() + A.sum() == pytest.approx(np.pi * 1.5**2, abs=1e-9)

    def test_carrier_radius_below_transmission_rejected(self, part):
        with pytest.raises(ValueError):
            part.carrier_areas(3, np.array([0.5]), carrier_radius=0.5)

    def test_annulus_excludes_transmission_disk(self, part, rng):
        # Monte-Carlo: B counts only the annulus r < d <= 2r.
        j, x = 2, 0.6
        radial = (j - 1) + x
        pts = sample_disk(200_000, 2.0, rng, center=(radial, 0.0))
        d_from_node = np.hypot(pts[:, 0] - radial, pts[:, 1])
        d_from_origin = np.hypot(pts[:, 0], pts[:, 1])
        B = part.carrier_areas(j, np.array([x]))[0]
        window = part.carrier_window(j)
        for offset, k in enumerate(window):
            if k < 1 or k > part.n_rings:
                continue
            frac = (
                (d_from_node > 1.0)
                & (d_from_origin > k - 1)
                & (d_from_origin <= k)
            ).mean()
            assert B[offset] == pytest.approx(frac * np.pi * 4.0, abs=0.05)


class TestProperties:
    @given(
        j=st.integers(min_value=1, max_value=5),
        x=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_areas_nonnegative_and_bounded(self, j, x):
        part = RingPartition(5)
        A = part.transmission_areas(j, np.array([x]))
        assert np.all(A >= -1e-12)
        # abs tol 1e-6: lens-area round-off near tangencies.
        assert A.sum() <= np.pi + 1e-6

    @given(
        j=st.integers(min_value=1, max_value=4),
        x=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_interior_partition_exact(self, j, x):
        part = RingPartition(6)
        A = part.transmission_areas(j, np.array([x]))
        # abs tol 1e-6: near circle tangencies the lens formula loses
        # ~sqrt(eps) digits through arccos at its endpoints.
        assert A.sum() == pytest.approx(np.pi, abs=1e-6)
