"""The density-aware CFM refinement (paper's future-work sketch)."""

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.flooding import flooding_cfm_summary, flooding_success_rate
from repro.analysis.refined import (
    DensityAwareCostModel,
    refined_flooding_summary,
    success_rate_vs_density,
)
from repro.models.costs import CostModel
from repro.errors import ConfigurationError


class TestSuccessRate:
    def test_single_transmitter_is_reliable(self):
        cfg = AnalysisConfig(rho=40)
        # concurrency 1: a lone transmitter never collides.
        assert success_rate_vs_density(cfg, concurrency=1.0) == 1.0

    def test_decreases_with_density(self):
        rates = [
            success_rate_vs_density(AnalysisConfig(rho=rho)) for rho in (10, 40, 100)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_increases_with_slots(self):
        r3 = success_rate_vs_density(AnalysisConfig(rho=40, slots=3))
        r8 = success_rate_vs_density(AnalysisConfig(rho=40, slots=8))
        assert r8 > r3

    def test_thinning_helps(self):
        cfg = AnalysisConfig(rho=60)
        assert success_rate_vs_density(cfg, p=0.1) > success_rate_vs_density(cfg, p=1.0)

    def test_single_slot_degenerate(self):
        cfg = AnalysisConfig(rho=40, slots=1)
        assert success_rate_vs_density(cfg, concurrency=1.0) == 1.0
        assert success_rate_vs_density(cfg) == 0.0

    def test_matches_expected_singletons_formula(self):
        cfg = AnalysisConfig(rho=30, slots=3)
        expected = (2.0 / 3.0) ** 29
        assert success_rate_vs_density(cfg) == pytest.approx(expected)


class TestDensityAwareCostModel:
    def test_ring_method_matches_fig12_machinery(self):
        cfg = AnalysisConfig(rho=40)
        model = DensityAwareCostModel.for_density(cfg, method="ring")
        assert model.success_rate == pytest.approx(
            flooding_success_rate(cfg, receivers="all").rate
        )

    def test_slot_method_is_pessimistic(self):
        cfg = AnalysisConfig(rho=40)
        slot = DensityAwareCostModel.for_density(cfg, method="slot")
        ring = DensityAwareCostModel.for_density(cfg, method="ring")
        assert slot.expected_attempts > ring.expected_attempts

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            DensityAwareCostModel.for_density(AnalysisConfig(), method="vibes")

    def test_effective_costs_scale_with_attempts(self):
        model = DensityAwareCostModel(base=CostModel(time=2.0, energy=3.0), success_rate=0.25)
        eff = model.effective()
        assert eff.time == pytest.approx(8.0)
        assert eff.energy == pytest.approx(12.0)

    def test_perfect_rate_keeps_base_costs(self):
        model = DensityAwareCostModel(base=CostModel(), success_rate=1.0)
        assert model.effective() == CostModel()

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityAwareCostModel(base=CostModel(), success_rate=0.0)

    def test_attempts_grow_with_density(self):
        a = DensityAwareCostModel.for_density(AnalysisConfig(rho=20))
        b = DensityAwareCostModel.for_density(AnalysisConfig(rho=100))
        assert b.expected_attempts > a.expected_attempts


class TestRefinedFloodingSummary:
    def test_strictly_pricier_than_plain_cfm(self):
        cfg = AnalysisConfig(rho=60)
        plain = flooding_cfm_summary(cfg)
        refined = refined_flooding_summary(cfg)
        assert refined.broadcasts > plain.broadcasts
        assert refined.latency_phases > plain.latency_phases
        assert refined.reachability == plain.reachability == 1.0

    def test_cost_gap_widens_with_density(self):
        gaps = []
        for rho in (20, 80):
            cfg = AnalysisConfig(rho=rho)
            gaps.append(
                refined_flooding_summary(cfg).broadcasts
                / flooding_cfm_summary(cfg).broadcasts
            )
        assert gaps[1] > gaps[0]

    def test_attempt_factor_consistency(self):
        cfg = AnalysisConfig(rho=40)
        s = refined_flooding_summary(cfg)
        assert s.broadcasts == pytest.approx(
            (cfg.n_nodes + 1) * s.expected_attempts
        )
        assert s.latency_phases == pytest.approx(
            cfg.n_rings * s.expected_attempts
        )
