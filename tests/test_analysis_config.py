"""AnalysisConfig: validation and derived quantities."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = AnalysisConfig()
        assert cfg.n_rings == 5 and cfg.slots == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_rings": 0},
            {"rho": 0.0},
            {"rho": -5.0},
            {"slots": 0},
            {"radius": 0.0},
            {"quad_nodes": 1},
            {"mu_method": "bogus"},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            AnalysisConfig(**kwargs)

    def test_rejects_sub_unit_carrier_factor(self):
        with pytest.raises(ValueError):
            AnalysisConfig(carrier_factor=0.5)

    def test_frozen(self):
        cfg = AnalysisConfig()
        with pytest.raises(AttributeError):
            cfg.rho = 10.0


class TestDerived:
    def test_delta(self):
        cfg = AnalysisConfig(rho=np.pi, radius=1.0)
        assert cfg.delta == pytest.approx(1.0)

    def test_n_nodes_rho_p_squared(self):
        cfg = AnalysisConfig(n_rings=5, rho=60)
        assert cfg.n_nodes == pytest.approx(60 * 25)

    def test_field_radius(self):
        assert AnalysisConfig(n_rings=4, radius=2.0).field_radius == 8.0

    def test_carrier_radius(self):
        assert AnalysisConfig(radius=1.5, carrier_factor=2.0).carrier_radius == 3.0

    def test_n_nodes_scale_free_in_radius(self):
        # rho already folds in the radius, so N must not depend on r.
        a = AnalysisConfig(rho=60, radius=1.0).n_nodes
        b = AnalysisConfig(rho=60, radius=7.0).n_nodes
        assert a == b


class TestCopies:
    def test_with_rho(self):
        cfg = AnalysisConfig(rho=20)
        cfg2 = cfg.with_rho(80)
        assert cfg2.rho == 80 and cfg.rho == 20
        assert cfg2.n_rings == cfg.n_rings

    def test_with_fields(self):
        cfg = AnalysisConfig().with_(slots=5, quad_nodes=48)
        assert cfg.slots == 5 and cfg.quad_nodes == 48

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            AnalysisConfig().with_(slots=0)
