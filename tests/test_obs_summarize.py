"""The summarize CLI, and trace-vs-result faithfulness."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import capture, provenance, summarize
from repro.obs.events import SearchStep, StoreAccess
from repro.obs.trace import JsonlSink
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast


@pytest.fixture
def traced_run(tmp_path):
    """One traced vector-engine run: (jsonl path, RunResult)."""
    config = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3))
    path = tmp_path / "run.jsonl"
    with capture(JsonlSink(path)):
        result = run_broadcast(ProbabilisticRelay(0.5), config, 99)
    return path, result


class TestTraceFaithfulness:
    def test_replay_matches_run_result(self, traced_run):
        """The acceptance criterion: totals recomputed from the event
        stream equal what the engine returned."""
        path, result = traced_run
        s = summarize.summarize_trace(path)
        assert s["collisions_total"] == result.collisions
        assert s["reachability"] == pytest.approx(result.reachability)
        assert s["n_informed"] == int(result.new_informed_by_slot.sum())
        assert s["run"].total_tx == result.total_tx
        assert s["run"].n_field_nodes == result.n_field_nodes

    def test_des_replay_reachability_matches(self, tmp_path):
        config = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3))
        path = tmp_path / "des.jsonl"
        with capture(JsonlSink(path)):
            result = DesBroadcastSimulation(
                ProbabilisticRelay(0.5), config, 99
            ).run()
        s = summarize.summarize_trace(path)
        assert s["reachability"] == pytest.approx(result.reachability)
        assert s["run"].collisions == result.collisions

    def test_slot_tx_sums_to_total_tx(self, traced_run):
        path, result = traced_run
        s = summarize.summarize_trace(path)
        assert sum(e.n_tx for e in s["slots"]) == result.total_tx


class TestRenderTrace:
    def test_report_contents(self, traced_run):
        path, result = traced_run
        text = summarize.render_trace(path)
        assert f"total collisions (from SlotResolved): {result.collisions}" in text
        assert "phase   tx    new  informed" in text
        assert "run complete:" in text
        assert "WARNING" not in text

    def test_truncated_trace_warns(self, traced_run, tmp_path):
        path, result = traced_run
        assert result.collisions > 0  # rho=20, p=0.5 always collides
        lines = path.read_text().splitlines()
        truncated = tmp_path / "cut.jsonl"
        # Keep the RunComplete record but drop every SlotResolved line,
        # so the recomputed collision sum cannot match it.
        kept = [ln for ln in lines if "SlotResolved" not in ln]
        truncated.write_text("\n".join(kept) + "\n")
        text = summarize.render_trace(truncated)
        assert "WARNING" in text

    def test_max_slots_caps_timeline(self, traced_run):
        path, _ = traced_run
        text = summarize.render_trace(path, max_slots=2)
        assert "(2 of" in text


class TestStoreAndSearchEvents:
    """StoreAccess and SearchStep events aggregate and render (PR 7)."""

    @pytest.fixture
    def mixed_trace(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        sink = JsonlSink(path)
        key = "ab" * 32
        for ev in (
            StoreAccess(op="hit", key=key, n_results=20, nbytes=800),
            StoreAccess(op="miss", key=key, n_results=0, nbytes=0),
            StoreAccess(op="miss", key=key, n_results=0, nbytes=0),
            StoreAccess(op="put", key=key, n_results=20, nbytes=1234),
            StoreAccess(op="put", key=key, n_results=20, nbytes=766),
            SearchStep(stage="probe", rung=0, p=0.1, feasible=False, value=float("nan")),
            SearchStep(stage="probe", rung=3, p=0.5, feasible=True, value=12.5),
            SearchStep(stage="verify", rung=3, p=0.5, feasible=True, value=12.1),
        ):
            sink.emit(ev)
        sink.close()
        return path

    def test_store_ops_aggregate(self, mixed_trace):
        s = summarize.summarize_trace(mixed_trace)
        assert s["store_ops"] == {"hit": 1, "miss": 2, "put": 2}
        assert s["store_put_bytes"] == 2000

    def test_search_steps_kept_in_order(self, mixed_trace):
        s = summarize.summarize_trace(mixed_trace)
        stages = [st.stage for st in s["search_steps"]]
        assert stages == ["probe", "probe", "verify"]
        assert s["search_steps"][1].value == pytest.approx(12.5)

    def test_render_includes_store_and_search(self, mixed_trace):
        text = summarize.render_trace(mixed_trace)
        assert "store accesses (5 events):" in text
        assert "put" in text and "(2000 bytes)" in text
        assert "search steps (3):" in text
        assert "verify" in text

    def test_pure_sim_trace_output_unchanged(self, traced_run):
        """A trace without store/search events renders exactly as before."""
        path, _ = traced_run
        text = summarize.render_trace(path)
        assert "store accesses" not in text
        assert "search steps" not in text

    def test_engine_trace_has_empty_aggregates(self, traced_run):
        path, _ = traced_run
        s = summarize.summarize_trace(path)
        assert s["store_ops"] == {}
        assert s["store_put_bytes"] == 0
        assert s["search_steps"] == []


class TestCli:
    def test_trace_path(self, traced_run, capsys):
        path, result = traced_run
        assert summarize.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert str(result.collisions) in out

    def test_manifest_path_and_directory(self, tmp_path, capsys):
        provenance.write_manifest(tmp_path, "sweep_grid", seed=5)
        assert summarize.main([str(tmp_path / "manifest.json")]) == 0
        assert "kind=sweep_grid" in capsys.readouterr().out
        assert summarize.main([str(tmp_path)]) == 0
        assert "entropy=5" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert summarize.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_garbage_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "NoSuchEvent"}\n')
        assert summarize.main([str(bad)]) == 1
        assert "cannot summarize" in capsys.readouterr().err

    def test_runs_as_module(self, traced_run):
        import subprocess
        import sys

        path, _ = traced_run
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.summarize", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "run complete:" in proc.stdout
