"""Unit-disk topology construction: grid index vs brute force, graph ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import Topology, build_disk_graph_csr


def brute_force_edges(positions, radius):
    n = len(positions)
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            if np.hypot(*(positions[i] - positions[j])) <= radius:
                edges.add((i, j))
    return edges


def csr_edges(indptr, indices):
    edges = set()
    for u in range(len(indptr) - 1):
        for v in indices[indptr[u] : indptr[u + 1]]:
            if u < v:
                edges.add((u, int(v)))
    return edges


class TestCsrConstruction:
    def test_matches_brute_force_random(self, rng):
        pos = rng.uniform(-5, 5, size=(300, 2))
        indptr, indices = build_disk_graph_csr(pos, 1.0)
        assert csr_edges(indptr, indices) == brute_force_edges(pos, 1.0)

    def test_matches_brute_force_clustered(self, rng):
        # Dense cluster stresses same-cell pair handling.
        pos = rng.normal(0, 0.3, size=(200, 2))
        indptr, indices = build_disk_graph_csr(pos, 0.5)
        assert csr_edges(indptr, indices) == brute_force_edges(pos, 0.5)

    def test_neighbor_lists_sorted(self, rng):
        pos = rng.uniform(0, 4, size=(150, 2))
        indptr, indices = build_disk_graph_csr(pos, 1.0)
        for u in range(150):
            row = indices[indptr[u] : indptr[u + 1]]
            assert np.all(np.diff(row) > 0)

    def test_no_self_loops(self, rng):
        pos = rng.uniform(0, 2, size=(100, 2))
        indptr, indices = build_disk_graph_csr(pos, 1.5)
        for u in range(100):
            assert u not in indices[indptr[u] : indptr[u + 1]]

    def test_symmetry(self, rng):
        pos = rng.uniform(0, 3, size=(120, 2))
        indptr, indices = build_disk_graph_csr(pos, 1.0)
        edges = csr_edges(indptr, indices)
        for u in range(120):
            for v in indices[indptr[u] : indptr[u + 1]]:
                lo, hi = min(u, int(v)), max(u, int(v))
                assert (lo, hi) in edges

    def test_empty(self):
        indptr, indices = build_disk_graph_csr(np.zeros((0, 2)), 1.0)
        assert len(indptr) == 1 and len(indices) == 0

    def test_single_node(self):
        indptr, indices = build_disk_graph_csr(np.zeros((1, 2)), 1.0)
        assert list(indptr) == [0, 0]

    def test_coincident_points_connected(self):
        pos = np.zeros((3, 2))
        indptr, indices = build_disk_graph_csr(pos, 1.0)
        assert len(indices) == 6  # complete graph on 3

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            build_disk_graph_csr(np.zeros((5, 3)), 1.0)

    @given(n=st.integers(min_value=2, max_value=60), r=st.floats(0.2, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, n, r):
        rng = np.random.default_rng(n * 1000 + int(r * 10))
        pos = rng.uniform(-4, 4, size=(n, 2))
        indptr, indices = build_disk_graph_csr(pos, r)
        assert csr_edges(indptr, indices) == brute_force_edges(pos, r)


class TestTopology:
    def test_basic_properties(self, rng):
        pos = rng.uniform(0, 4, size=(80, 2))
        topo = Topology(pos, 1.0)
        assert topo.n_nodes == 80
        assert topo.degrees.sum() == 2 * topo.n_edges
        assert topo.mean_degree == pytest.approx(topo.degrees.mean())

    def test_neighbors_view(self, rng):
        pos = rng.uniform(0, 3, size=(50, 2))
        topo = Topology(pos, 1.0)
        nbrs = topo.neighbors(0)
        for v in nbrs:
            assert np.hypot(*(pos[0] - pos[v])) <= 1.0

    def test_positions_immutable(self, rng):
        topo = Topology(rng.uniform(0, 2, size=(10, 2)), 1.0)
        with pytest.raises(ValueError):
            topo.positions[0, 0] = 99.0

    def test_connectivity_line_vs_split(self):
        line = Topology(np.array([[0.0, 0], [1.0, 0], [2.0, 0]]), 1.1)
        assert line.is_connected()
        split = Topology(np.array([[0.0, 0], [1.0, 0], [10.0, 0]]), 1.1)
        assert not split.is_connected()

    def test_reachable_from(self):
        split = Topology(np.array([[0.0, 0], [1.0, 0], [10.0, 0]]), 1.1)
        mask = split.reachable_from(0)
        assert list(mask) == [True, True, False]

    def test_carrier_csr_superset(self, rng):
        pos = rng.uniform(0, 5, size=(100, 2))
        topo = Topology(pos, 1.0)
        c_indptr, c_indices = topo.carrier_csr()
        tx_edges = csr_edges(topo.indptr, topo.indices)
        carrier_edges = csr_edges(c_indptr, c_indices)
        assert tx_edges <= carrier_edges
        assert carrier_edges == brute_force_edges(pos, 2.0)

    def test_carrier_radius_default(self, rng):
        topo = Topology(rng.uniform(0, 2, (10, 2)), 1.5)
        assert topo.carrier_radius == 3.0

    def test_carrier_radius_below_radius_rejected(self, rng):
        with pytest.raises(ValueError):
            Topology(rng.uniform(0, 2, (10, 2)), 1.0, carrier_radius=0.5)

    def test_to_networkx(self):
        pos = np.array([[0.0, 0], [1.0, 0], [5.0, 0]])
        g = Topology(pos, 1.1).to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 1
        assert g.nodes[0]["pos"] == (0.0, 0.0)

    def test_iter_edges_unique(self, rng):
        topo = Topology(rng.uniform(0, 3, (60, 2)), 1.0)
        edges = list(topo.iter_edges())
        assert len(edges) == len(set(edges)) == topo.n_edges
