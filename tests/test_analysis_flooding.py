"""Flooding analysis: CFM closed forms, CAM behaviour, Fig. 12 success rate."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.flooding import (
    flooding_cfm_summary,
    flooding_success_rate,
    flooding_trace,
)
from repro.analysis.ring_model import RingModel
from repro.errors import ConfigurationError


class TestCfmSummary:
    def test_closed_forms(self):
        cfg = AnalysisConfig(n_rings=5, rho=60)
        s = flooding_cfm_summary(cfg)
        assert s.reachability == 1.0
        assert s.latency_phases == 5
        assert s.broadcasts == pytest.approx(60 * 25 + 1)

    def test_scales_with_density(self):
        a = flooding_cfm_summary(AnalysisConfig(rho=20))
        b = flooding_cfm_summary(AnalysisConfig(rho=140))
        assert b.broadcasts > a.broadcasts
        assert a.latency_phases == b.latency_phases  # O(P r), density-free


class TestFloodingTrace:
    def test_is_p_one_run(self, paper_config):
        a = flooding_trace(paper_config)
        b = RingModel(paper_config).run(1.0, max_phases=200)
        np.testing.assert_allclose(a.new_by_phase_ring, b.new_by_phase_ring)
        assert a.p == 1.0

    def test_cam_flooding_slow_at_high_density(self):
        # Collisions don't stop the flooding wave but they cripple its
        # speed: within the paper's 5-phase budget it reaches < 0.5 at
        # rho = 140 (Fig. 4a, the p = 1 curve), despite eventually
        # informing nearly everyone.
        trace = flooding_trace(AnalysisConfig(rho=140))
        assert trace.reachability_after(5) < 0.5
        assert trace.final_reachability > 0.95


class TestSuccessRate:
    def test_rate_in_unit_interval(self, paper_config):
        res = flooding_success_rate(paper_config)
        assert 0.0 < res.rate < 1.0

    def test_first_phase_rate_is_one(self, paper_config):
        res = flooding_success_rate(paper_config)
        assert res.per_phase_rates[0] == 1.0
        assert res.per_phase_transmissions[0] == 1.0

    def test_rate_decreases_with_density(self):
        rates = [
            flooding_success_rate(AnalysisConfig(rho=rho)).rate
            for rho in (20, 60, 140)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_receiver_conventions_differ(self, paper_config):
        uninf = flooding_success_rate(paper_config, receivers="uninformed")
        all_ = flooding_success_rate(paper_config, receivers="all")
        assert all_.rate > uninf.rate  # informed receivers only add successes

    def test_invalid_convention(self, paper_config):
        with pytest.raises(ConfigurationError):
            flooding_success_rate(paper_config, receivers="everyone")

    def test_fig12_ratio_roughly_constant(self):
        """The paper's Fig. 12 observation: optimal_p / success_rate is
        nearly density-independent (they report ~11; we get ~10)."""
        from repro.analysis.optimizer import optimal_probability

        grid = np.arange(0.02, 1.001, 0.02)
        ratios = []
        for rho in (20, 80, 140):
            cfg = AnalysisConfig(rho=rho)
            opt = optimal_probability(cfg, "reachability_at_latency", 5, p_grid=grid)
            sr = flooding_success_rate(cfg)
            ratios.append(opt.p / sr.rate)
        assert max(ratios) / min(ratios) < 1.35
        assert 7.0 < np.mean(ratios) < 14.0

    def test_transmissions_match_trace(self, paper_config):
        res = flooding_success_rate(paper_config)
        trace = res.trace
        # Phase i's transmitters are phase i-1's arrivals (p = 1).
        np.testing.assert_allclose(
            res.per_phase_transmissions[1:],
            trace.new_by_phase[:-1],
        )
