"""Edge-case hardening across modules (second-pass coverage)."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel
from repro.collision.slots import _binom_pmf_matrix
from repro.des.simulator import Simulator
from repro.models.tdma import TdmaSchedule, distance2_coloring
from repro.network.topology import Topology, build_disk_graph_csr
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast
from repro.sim.reliable import ReliableFloodingSimulation


class TestBinomialMatrix:
    def test_rows_sum_to_one(self):
        w = _binom_pmf_matrix(200, 1.0 / 3.0)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, rtol=1e-10)

    def test_no_overflow_at_large_k(self):
        w = _binom_pmf_matrix(1000, 0.5)
        assert np.all(np.isfinite(w))
        assert w[1000].sum() == pytest.approx(1.0, rel=1e-9)

    def test_upper_triangle_zero(self):
        w = _binom_pmf_matrix(5, 0.25)
        assert w[2, 3] == 0.0 and w[0, 1] == 0.0


class TestRingModelInitialConditions:
    def test_default_matches_explicit_ring_one(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        model = RingModel(cfg)
        default = model.run(0.3, max_phases=6)
        explicit = model.run(
            0.3, max_phases=6, initial_informed=np.array([20.0, 0.0, 0.0])
        )
        np.testing.assert_allclose(
            default.new_by_phase_ring, explicit.new_by_phase_ring
        )

    def test_outer_ring_seed_spreads_inward(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        model = RingModel(cfg)
        seed = np.zeros(3)
        seed[2] = 30.0  # part of ring 3 informed in phase 1
        trace = model.run(0.4, max_phases=10, initial_informed=seed)
        informed = trace.informed_by_ring()
        assert informed[1] > 0  # ring 2 reached
        assert informed[0] > 0  # and eventually ring 1

    def test_bad_shape_rejected(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        with pytest.raises(ValueError, match="shape"):
            RingModel(cfg).run(0.3, initial_informed=np.zeros(2))

    def test_over_population_rejected(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        with pytest.raises(ValueError, match="population"):
            RingModel(cfg).run(0.3, initial_informed=np.array([1e6, 0.0, 0.0]))

    def test_negative_rejected(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        with pytest.raises(ValueError, match="non-negative"):
            RingModel(cfg).run(0.3, initial_informed=np.array([-1.0, 0.0, 0.0]))

    def test_custom_initial_broadcasts(self):
        cfg = AnalysisConfig(n_rings=3, rho=20, quad_nodes=32)
        trace = RingModel(cfg).run(0.0, initial_broadcasts=7.0)
        assert trace.broadcasts_by_phase[0] == 7.0


class TestDesSchedulingEdges:
    def test_schedule_at_current_time_allowed(self):
        sim, log = Simulator(), []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, log.append, "x"))
        sim.run()
        assert log == ["x"]

    def test_zero_delay_runs_after_current(self):
        sim, log = Simulator(), []

        def first():
            log.append("a")
            sim.schedule(0.0, log.append, "b")

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_zero(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=0.0)
        assert sim.now == 0.0
        assert sim.pending == 1


class TestTopologyExtremes:
    def test_far_from_origin_coordinates(self, rng):
        pos = rng.uniform(0, 3, size=(60, 2)) + np.array([1e6, -2e6])
        indptr, indices = build_disk_graph_csr(pos, 1.0)
        # Compare against brute force at the shifted location.
        expected = set()
        for i in range(60):
            for j in range(i + 1, 60):
                if np.hypot(*(pos[i] - pos[j])) <= 1.0:
                    expected.add((i, j))
        got = set()
        for u in range(60):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < v:
                    got.add((u, int(v)))
        assert got == expected

    def test_all_coincident(self):
        topo = Topology(np.zeros((5, 2)), 1.0)
        assert topo.degrees.tolist() == [4] * 5

    def test_radius_much_larger_than_spread(self, rng):
        pos = rng.uniform(0, 0.1, size=(20, 2))
        topo = Topology(pos, radius=10.0)
        assert topo.n_edges == 20 * 19 // 2  # complete graph


class TestTdmaDegenerate:
    def test_single_node(self):
        topo = Topology(np.zeros((1, 2)), 1.0)
        colors = distance2_coloring(topo)
        assert list(colors) == [0]
        assert TdmaSchedule.build(topo).n_slots == 1

    def test_two_disconnected_nodes_share_slot(self):
        topo = Topology(np.array([[0.0, 0.0], [100.0, 0.0]]), 1.0)
        sched = TdmaSchedule.build(topo)
        assert sched.n_slots == 1  # spatial reuse


class TestEngineFeatureCombos:
    def test_carrier_sense_plus_half_duplex(self):
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=25),
            carrier_sense=True,
            half_duplex=True,
        )
        res = run_broadcast(ProbabilisticRelay(0.3), cfg, 5)
        assert 0.0 <= res.reachability <= 1.0
        assert res.informed_mask.sum() == res.new_informed_by_slot.sum() + 1

    def test_reliable_flooding_with_carrier_sense(self):
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=10), carrier_sense=True
        )
        sim = ReliableFloodingSimulation(cfg, 3, max_attempts=128)
        res = sim.run()
        # Reliability contract still holds; cost is just higher.
        assert res.reachability > 0.9 or sim.capped_nodes > 0

    def test_poisson_population_engine(self):
        cfg = SimulationConfig(
            analysis=AnalysisConfig(n_rings=3, rho=15), population="poisson"
        )
        a = run_broadcast(ProbabilisticRelay(0.4), cfg, 1)
        b = run_broadcast(ProbabilisticRelay(0.4), cfg, 2)
        assert a.n_field_nodes != b.n_field_nodes  # populations vary
