"""Packet records."""

from repro.models.packet import Packet


class TestPacket:
    def test_unique_uids(self):
        a, b = Packet(origin=0, sender=0), Packet(origin=0, sender=0)
        assert a.uid != b.uid

    def test_relay_preserves_information_identity(self):
        root = Packet(origin=0, sender=0, payload="query-17")
        relay = root.relayed_by(5)
        assert relay.key == root.key
        assert relay.sender == 5
        assert relay.origin == 0

    def test_relay_increments_hops(self):
        root = Packet(origin=0, sender=0)
        assert root.relayed_by(1).relayed_by(2).hops == 2

    def test_key_distinguishes_kinds(self):
        a = Packet(origin=0, sender=0, kind="broadcast")
        b = Packet(origin=0, sender=0, kind="ack")
        assert a.key != b.key

    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            Packet(origin=0, sender=0).sender = 3
