"""Validation helpers: every failure mode named and raised as ConfigurationError."""


import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_coerces_to_float(self):
        out = check_positive("x", 3)
        assert isinstance(out, float) and out == 3.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError, match="x="):
            check_positive("x", 0)

    def test_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0.0

    def test_rejects_negative_even_with_allow_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, allow_zero=True)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", "five")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="rho"):
            check_positive("rho", -3)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 7) == 7

    def test_accepts_numpy_integer(self):
        assert check_positive_int("n", np.int64(4)) == 4

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", True)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 2.0)

    def test_minimum(self):
        assert check_positive_int("n", 0, minimum=0) == 0
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 0, minimum=1)


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.0001)

    def test_disallow_zero(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 0.0, allow_zero=False)


class TestCheckFraction:
    def test_interior_ok(self):
        assert check_fraction("f", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, 1.5, -0.2])
    def test_rejects_boundary_and_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction("f", bad)


class TestCheckIn:
    def test_member(self):
        assert check_in("mode", "cam", ("cam", "cfm")) == "cam"

    def test_non_member(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_in("mode", "tdma", ("cam", "cfm"))
