"""Per-rule self-tests: fixture snippets that must and must not trigger.

Every rule gets at least one trigger / no-trigger pair; the synthetic
paths place each snippet inside or outside the rule's scope on purpose.
"""

from __future__ import annotations

from textwrap import dedent

from repro.analysis.lint import all_rules, check_source
from repro.analysis.lint.core import Finding


def findings(source: str, path: str, rule: str) -> list[Finding]:
    hits = [f for f in check_source(dedent(source), path) if f.rule == rule]
    return [f for f in hits if not f.suppressed]


class TestRegistry:
    def test_expected_rules_registered(self):
        ids = {r.id for r in all_rules()}
        assert {
            "det-global-rng",
            "det-wallclock",
            "dep-runtime-scipy",
            "obs-neutrality",
            "vec-object-dtype",
            "err-silent-except",
        } <= ids

    def test_project_rules_registered(self):
        from repro.analysis.lint.core import all_project_rules

        ids = {r.id for r in all_project_rules()}
        assert {
            "flow-seed-provenance",
            "flow-det-taint",
            "flow-effects",
        } <= ids

    def test_superseded_rules_gone(self):
        # api-seed-kwarg and store-key-purity graduated to the
        # whole-program flow analyses in PR 9.
        ids = {r.id for r in all_rules()}
        assert "api-seed-kwarg" not in ids
        assert "store-key-purity" not in ids

    def test_rules_have_summaries(self):
        for rule in all_rules():
            assert rule.id and rule.summary


class TestDetGlobalRng:
    RULE = "det-global-rng"

    def test_np_random_seed_triggers(self):
        src = """
            import numpy as np
            np.random.seed(42)
        """
        assert len(findings(src, "src/repro/sim/x.py", self.RULE)) == 1

    def test_np_random_distribution_triggers(self):
        src = """
            import numpy as np
            x = np.random.uniform(0.0, 1.0, 10)
        """
        assert len(findings(src, "benchmarks/bench_x.py", self.RULE)) == 1

    def test_stdlib_random_triggers(self):
        src = """
            import random
            random.shuffle(items)
        """
        assert len(findings(src, "examples/x.py", self.RULE)) == 1

    def test_from_import_triggers(self):
        src = """
            from random import randint
            k = randint(0, 10)
        """
        assert len(findings(src, "src/repro/sim/x.py", self.RULE)) == 1

    def test_from_numpy_random_import_triggers(self):
        src = """
            from numpy.random import seed
            seed(7)
        """
        assert len(findings(src, "src/repro/sim/x.py", self.RULE)) == 1

    def test_default_rng_ok(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.random(10)
            ss = np.random.SeedSequence(7)
        """
        assert findings(src, "src/repro/sim/x.py", self.RULE) == []

    def test_random_instance_ok(self):
        src = """
            import random
            r = random.Random(42)
        """
        assert findings(src, "src/repro/sim/x.py", self.RULE) == []

    def test_utils_rng_allowlisted(self):
        src = """
            import numpy as np
            np.random.seed(0)
        """
        assert findings(src, "src/repro/utils/rng.py", self.RULE) == []


class TestDetWallclock:
    RULE = "det-wallclock"

    def test_time_time_triggers(self):
        src = """
            import time
            stamp = time.time()
        """
        assert len(findings(src, "src/repro/sim/engine.py", self.RULE)) == 1

    def test_from_time_import_triggers(self):
        src = """
            from time import time
            stamp = time()
        """
        assert len(findings(src, "src/repro/sim/engine.py", self.RULE)) == 1

    def test_datetime_now_triggers(self):
        src = """
            from datetime import datetime
            stamp = datetime.now()
        """
        assert len(findings(src, "src/repro/models/cam.py", self.RULE)) == 1

    def test_datetime_module_now_triggers(self):
        src = """
            import datetime
            stamp = datetime.datetime.now()
        """
        assert len(findings(src, "src/repro/models/cam.py", self.RULE)) == 1

    def test_perf_counter_ok(self):
        src = """
            import time
            t0 = time.perf_counter()
        """
        assert findings(src, "src/repro/sim/engine.py", self.RULE) == []

    def test_provenance_allowlisted(self):
        src = """
            import time
            stamp = time.time()
        """
        assert findings(src, "src/repro/obs/provenance.py", self.RULE) == []

    def test_out_of_scope_paths_ok(self):
        src = """
            import time
            stamp = time.time()
        """
        assert findings(src, "benchmarks/bench_x.py", self.RULE) == []


class TestDepRuntimeScipy:
    RULE = "dep-runtime-scipy"

    def test_from_scipy_import_triggers(self):
        src = """
            from scipy.special import gammaln
        """
        assert len(findings(src, "src/repro/collision/slots.py", self.RULE)) == 1

    def test_plain_import_triggers(self):
        src = """
            import scipy.stats
        """
        assert len(findings(src, "src/repro/utils/stats.py", self.RULE)) == 1

    def test_function_level_import_triggers(self):
        src = """
            def f():
                from scipy.optimize import brentq
                return brentq
        """
        assert len(findings(src, "src/repro/analysis/optimizer.py", self.RULE)) == 1

    def test_type_checking_import_ok(self):
        src = """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from scipy.sparse import csr_matrix
        """
        assert findings(src, "src/repro/network/topology.py", self.RULE) == []

    def test_tests_may_import_scipy(self):
        src = """
            from scipy.special import gammaln
        """
        assert findings(src, "tests/test_x.py", self.RULE) == []

    def test_scipyish_name_ok(self):
        src = """
            import scipylike
        """
        assert findings(src, "src/repro/utils/stats.py", self.RULE) == []


class TestObsNeutrality:
    RULE = "obs-neutrality"

    def test_metrics_field_without_compare_false_triggers(self):
        src = """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class RunResult:
                reach: float
                metrics: dict | None = field(default=None, repr=False)
        """
        assert len(findings(src, "src/repro/sim/results.py", self.RULE)) == 1

    def test_metrics_plain_default_triggers(self):
        src = """
            from dataclasses import dataclass

            @dataclass
            class SweepResult:
                metrics: dict | None = None
        """
        assert len(findings(src, "src/repro/sim/results.py", self.RULE)) == 1

    def test_metrics_with_compare_false_ok(self):
        src = """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class RunResult:
                reach: float
                metrics: dict | None = field(default=None, repr=False, compare=False)
        """
        assert findings(src, "src/repro/sim/results.py", self.RULE) == []

    def test_semantic_trace_field_ok(self):
        """``trace: BroadcastTrace`` is the result, not telemetry."""
        src = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RunResult:
                trace: BroadcastTrace
        """
        assert findings(src, "src/repro/sim/results.py", self.RULE) == []

    def test_telemetry_typed_field_triggers(self):
        src = """
            from dataclasses import dataclass

            @dataclass
            class DebugResult:
                buffer: RingBufferSink | None = None
        """
        assert len(findings(src, "src/repro/sim/results.py", self.RULE)) == 1

    def test_non_result_dataclass_ok(self):
        src = """
            from dataclasses import dataclass

            @dataclass
            class Snapshot:
                metrics: dict | None = None
        """
        assert findings(src, "src/repro/sim/results.py", self.RULE) == []

    def test_direct_tracer_emit_triggers(self):
        src = """
            from repro.obs import trace as obs_trace

            def f(ev):
                tracer = obs_trace.get_tracer()
                if tracer.enabled:
                    tracer.emit(ev)
        """
        assert len(findings(src, "src/repro/models/cam.py", self.RULE)) == 1

    def test_get_tracer_chained_emit_triggers(self):
        src = """
            from repro.obs.trace import get_tracer

            def f(ev):
                get_tracer().emit(ev)
        """
        assert len(findings(src, "src/repro/models/cam.py", self.RULE)) == 1

    def test_hoisted_emit_ok(self):
        src = """
            from repro.obs import trace as obs_trace

            def f(ev):
                tracer = obs_trace.get_tracer()
                emit = tracer.emit if tracer.enabled else None
                if emit is not None:
                    emit(ev)
        """
        assert findings(src, "src/repro/sim/engine.py", self.RULE) == []

    def test_obs_package_may_emit(self):
        src = """
            def fan_out(tracer, ev):
                tracer.emit(ev)
        """
        assert findings(src, "src/repro/obs/trace.py", self.RULE) == []

    def test_direct_profiler_begin_triggers(self):
        src = """
            from repro.obs import spans as obs_spans

            def f():
                prof = obs_spans.profiler()
                if prof.enabled:
                    h = prof.begin("engine.run", "engine")
                    h.end()
        """
        assert len(findings(src, "src/repro/sim/engine.py", self.RULE)) == 1

    def test_chained_profiler_begin_triggers(self):
        src = """
            from repro.obs.spans import profiler

            def f():
                profiler().begin("store.put", "store").end()
        """
        # Both the begin and the chained end are direct profiler calls.
        assert len(findings(src, "src/repro/store/backend.py", self.RULE)) >= 1

    def test_direct_profiler_end_triggers(self):
        src = """
            def f(prof, handle):
                prof.end(handle, hits=3)
        """
        assert len(findings(src, "src/repro/sim/runner.py", self.RULE)) == 1

    def test_hoisted_span_guard_ok(self):
        """The discipline every instrumented module follows."""
        src = """
            from repro.obs import spans as obs_spans

            def f():
                prof = obs_spans.profiler()
                begin = prof.begin if prof.enabled else None
                h = begin("engine.run", "engine") if begin is not None else None
                if h is not None:
                    h.end(slots=4)
        """
        assert findings(src, "src/repro/sim/engine.py", self.RULE) == []

    def test_obs_package_may_call_profiler(self):
        src = """
            def span(name, cat, prof):
                handle = prof.begin(name, cat)
                handle.end()
        """
        assert findings(src, "src/repro/obs/spans.py", self.RULE) == []

    def test_unrelated_begin_ok(self):
        """``begin``/``end`` on non-profiler objects is not telemetry."""
        src = """
            def f(transaction):
                transaction.begin()
                transaction.end()
        """
        assert findings(src, "src/repro/sim/runner.py", self.RULE) == []


class TestVecObjectDtype:
    RULE = "vec-object-dtype"

    def test_dtype_object_triggers(self):
        src = """
            import numpy as np
            a = np.empty(5, dtype=object)
        """
        assert len(findings(src, "src/repro/collision/slots.py", self.RULE)) == 1

    def test_np_vectorize_triggers(self):
        src = """
            import numpy as np
            f = np.vectorize(lambda x: x + 1)
        """
        assert len(findings(src, "src/repro/geometry/rings.py", self.RULE)) == 1

    def test_np_append_triggers(self):
        src = """
            import numpy as np

            def grow(a, b):
                return np.append(a, b)
        """
        assert len(findings(src, "src/repro/sim/engine.py", self.RULE)) == 1

    def test_float_dtype_ok(self):
        src = """
            import numpy as np
            a = np.zeros(5, dtype=np.float64)
            b = np.zeros(5, dtype=np.intp)
        """
        assert findings(src, "src/repro/collision/slots.py", self.RULE) == []

    def test_cold_path_out_of_scope(self):
        src = """
            import numpy as np
            a = np.empty(5, dtype=object)
        """
        assert findings(src, "src/repro/experiments/report.py", self.RULE) == []

    def test_batch_channel_kernel_in_scope(self):
        """The batched engine's (R, nodes) hot path covers the channel
        kernels and the stacked CSR builder."""
        src = """
            import numpy as np
            a = np.empty(5, dtype=object)
        """
        for path in (
            "src/repro/models/cam.py",
            "src/repro/models/cfm.py",
            "src/repro/models/channel.py",
            "src/repro/network/topology.py",
        ):
            assert len(findings(src, path, self.RULE)) == 1, path

    def test_np_append_in_stacked_builder_triggers(self):
        src = """
            import numpy as np

            def build_stacked(rows, extra):
                return np.append(rows, extra)
        """
        assert len(findings(src, "src/repro/network/topology.py", self.RULE)) == 1

    def test_other_models_modules_out_of_scope(self):
        src = """
            import numpy as np
            a = np.empty(5, dtype=object)
        """
        assert findings(src, "src/repro/models/packet.py", self.RULE) == []


class TestErrSilentExcept:
    RULE = "err-silent-except"

    def test_bare_except_triggers(self):
        src = """
            try:
                work()
            except:
                cleanup()
        """
        assert len(findings(src, "src/repro/sim/engine.py", self.RULE)) == 1

    def test_except_exception_pass_triggers(self):
        src = """
            try:
                work()
            except Exception:
                pass
        """
        assert len(findings(src, "src/repro/utils/parallel.py", self.RULE)) == 1

    def test_except_exception_handled_ok(self):
        src = """
            try:
                work()
            except Exception as exc:
                log(exc)
                raise
        """
        assert findings(src, "src/repro/utils/parallel.py", self.RULE) == []

    def test_narrow_except_pass_ok(self):
        src = """
            try:
                work()
            except KeyError:
                pass
        """
        assert findings(src, "src/repro/utils/parallel.py", self.RULE) == []

    def test_out_of_scope_ok(self):
        src = """
            try:
                work()
            except:
                pass
        """
        assert findings(src, "tests/test_x.py", self.RULE) == []


class TestSuppressions:
    def test_same_line_suppression_with_reason(self):
        src = """
            import numpy as np
            np.random.seed(42)  # repro: allow(det-global-rng) — fixture needs the legacy API
        """
        hits = [
            f
            for f in check_source(dedent(src), "src/repro/sim/x.py")
            if f.rule == "det-global-rng"
        ]
        assert len(hits) == 1 and hits[0].suppressed
        assert "legacy API" in hits[0].suppress_reason

    def test_preceding_line_suppression(self):
        src = """
            import numpy as np
            # repro: allow(det-global-rng) — documented exception
            np.random.seed(42)
        """
        hits = check_source(dedent(src), "src/repro/sim/x.py")
        assert [f.suppressed for f in hits if f.rule == "det-global-rng"] == [True]

    def test_reasonless_suppression_does_not_suppress(self):
        src = """
            import numpy as np
            np.random.seed(42)  # repro: allow(det-global-rng)
        """
        hits = [f for f in check_source(dedent(src), "src/repro/sim/x.py")]
        assert any(f.rule == "det-global-rng" and not f.suppressed for f in hits)

    def test_wrong_rule_suppression_does_not_suppress(self):
        src = """
            import numpy as np
            np.random.seed(42)  # repro: allow(det-wallclock) — wrong rule id
        """
        hits = [f for f in check_source(dedent(src), "src/repro/sim/x.py")]
        assert any(f.rule == "det-global-rng" and not f.suppressed for f in hits)

    def test_docstring_example_is_not_a_suppression(self):
        src = '''
            import numpy as np

            def f():
                """Use ``# repro: allow(det-global-rng) — reason`` to suppress."""
                np.random.seed(42)
        '''
        hits = [f for f in check_source(dedent(src), "src/repro/sim/x.py")]
        assert any(f.rule == "det-global-rng" and not f.suppressed for f in hits)
