"""Stacked deployments and adjacency for the replication-batched engine.

Pins the layout contracts: a :class:`DeploymentBatch` draw is
bit-identical to ``R`` independent per-run draws, the padded ``(R,
n_max, 2)`` view is zero-padding over the flat layout, and every
replication's slice of the stacked CSR equals the CSR a standalone
:class:`Topology` would build for it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.deployment import DeploymentBatch, DiskDeployment
from repro.network.topology import (
    StackedTopology,
    Topology,
    build_disk_graph_csr,
)

SEED = 20050113


def _batch(n=5, *, population="fixed", rho=20.0):
    rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(SEED).spawn(n)]
    return DeploymentBatch.sample(rho=rho, n_rings=3, rngs=rngs, population=population)


def _per_run_deployments(n=5, *, population="fixed", rho=20.0):
    rngs = [np.random.default_rng(s) for s in np.random.SeedSequence(SEED).spawn(n)]
    return [
        DiskDeployment.sample(rho=rho, n_rings=3, rng=rng, population=population)
        for rng in rngs
    ]


class TestDeploymentBatch:
    @pytest.mark.parametrize("population", ["fixed", "poisson"])
    def test_sample_bit_identical_to_per_run(self, population):
        batch = _batch(population=population)
        singles = _per_run_deployments(population=population)
        assert batch.n_reps == len(singles)
        for r, dep in enumerate(singles):
            lo, hi = batch.node_offsets[r], batch.node_offsets[r + 1]
            assert hi - lo == dep.n_nodes
            assert np.array_equal(batch.positions[lo:hi], dep.positions)

    def test_generator_state_matches_per_run(self):
        """The batch draw consumes *exactly* the per-run random stream:
        the generators end in the same state either way."""
        ss = np.random.SeedSequence(SEED).spawn(3)
        rngs_a = [np.random.default_rng(s) for s in ss]
        rngs_b = [np.random.default_rng(s) for s in ss]
        DeploymentBatch.sample(rho=20.0, n_rings=3, rngs=rngs_a)
        for rng in rngs_b:
            DiskDeployment.sample(rho=20.0, n_rings=3, rng=rng)
        for a, b in zip(rngs_a, rngs_b):
            assert a.bit_generator.state == b.bit_generator.state

    def test_offsets_and_sources(self):
        batch = _batch()
        counts = [dep.n_nodes for dep in batch.deployments]
        assert batch.node_offsets[0] == 0
        assert np.array_equal(np.diff(batch.node_offsets), counts)
        assert batch.n_nodes_total == sum(counts)
        assert np.array_equal(batch.source_ids, batch.node_offsets[:-1])
        # Every source sits at the origin of its block.
        assert np.allclose(batch.positions[batch.source_ids], 0.0)

    def test_padded_positions_ragged(self):
        batch = _batch(population="poisson")
        padded, mask = batch.padded_positions()
        counts = np.diff(batch.node_offsets)
        assert padded.shape == (batch.n_reps, counts.max(), 2)
        assert mask.shape == padded.shape[:2]
        assert np.array_equal(mask.sum(axis=1), counts)
        # Valid rows hold the flat positions in order; padding is zero.
        assert np.array_equal(padded[mask], batch.positions)
        assert np.all(padded[~mask] == 0.0)

    def test_ring_indices_match_per_run(self):
        batch = _batch()
        flat = batch.ring_indices()
        for r, dep in enumerate(batch.deployments):
            lo, hi = batch.node_offsets[r], batch.node_offsets[r + 1]
            assert np.array_equal(flat[lo:hi], dep.ring_indices())

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DeploymentBatch([])

    def test_mismatched_geometry_rejected(self):
        rng = np.random.default_rng(0)
        a = DiskDeployment.sample(rho=10, n_rings=3, rng=rng)
        b = DiskDeployment.sample(rho=10, n_rings=4, rng=rng)
        with pytest.raises(ValueError, match="share radius and n_rings"):
            DeploymentBatch([a, b])


class TestStackedTopology:
    def test_rep_slices_match_standalone_csr(self):
        batch = _batch()
        stacked = batch.stacked_topology()
        for r, dep in enumerate(batch.deployments):
            indptr, indices = stacked.rep_slice(r)
            ref_indptr, ref_indices = build_disk_graph_csr(
                dep.positions, batch.radius
            )
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_rep_slices_match_standalone_csr_ragged(self):
        batch = _batch(population="poisson")
        stacked = batch.stacked_topology()
        for r, dep in enumerate(batch.deployments):
            indptr, indices = stacked.rep_slice(r)
            ref_indptr, ref_indices = build_disk_graph_csr(
                dep.positions, batch.radius
            )
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(indices, ref_indices)

    def test_no_cross_replication_edges(self):
        """Global ids stay inside their owner's block — stacking never
        lets two replications see each other."""
        batch = _batch()
        stacked = batch.stacked_topology()
        for r in range(stacked.n_reps):
            lo = int(batch.node_offsets[r])
            hi = int(batch.node_offsets[r + 1])
            block = stacked.indices[stacked.indptr[lo] : stacked.indptr[hi]]
            assert np.all((block >= lo) & (block < hi))

    def test_carrier_csr_matches_standalone(self):
        batch = _batch()
        stacked = batch.stacked_topology()
        c_indptr, c_indices = stacked.carrier_csr()
        for r, dep in enumerate(batch.deployments):
            lo = int(batch.node_offsets[r])
            hi = int(batch.node_offsets[r + 1])
            e0 = int(c_indptr[lo])
            ref_indptr, ref_indices = build_disk_graph_csr(
                dep.positions, stacked.carrier_radius
            )
            assert np.array_equal(c_indptr[lo : hi + 1] - e0, ref_indptr)
            assert np.array_equal(
                c_indices[e0 : int(c_indptr[hi])] - lo, ref_indices
            )

    def test_rep_topology_views(self):
        batch = _batch()
        stacked = batch.stacked_topology()
        for r, dep in enumerate(batch.deployments):
            view = stacked.rep_topology(r)
            ref = Topology(dep.positions, batch.radius)
            assert view.n_nodes == ref.n_nodes
            assert np.array_equal(view.indptr, ref.indptr)
            assert np.array_equal(view.indices, ref.indices)
            for node in range(0, view.n_nodes, 7):
                assert np.array_equal(view.neighbors(node), ref.neighbors(node))
            # Cached: asking again returns the same object.
            assert stacked.rep_topology(r) is view

    def test_default_carrier_radius(self):
        stacked = _batch(2).stacked_topology()
        assert stacked.carrier_radius == 2.0 * stacked.radius

    def test_carrier_radius_below_radius_rejected(self):
        batch = _batch(2)
        with pytest.raises(ValueError, match="carrier_radius"):
            StackedTopology(
                batch.positions, batch.node_offsets, batch.radius, carrier_radius=0.5
            )

    def test_single_replication(self):
        batch = _batch(1)
        stacked = batch.stacked_topology()
        ref = Topology(batch.deployments[0].positions, batch.radius)
        assert np.array_equal(stacked.indptr, ref.indptr)
        assert np.array_equal(stacked.indices, ref.indices)
