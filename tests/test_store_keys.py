"""Store keys: stability, sensitivity, canonical-form strictness."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import StoreError
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.store import canonical_json, seed_fingerprint, sweep_key, task_key


def cfg(rho=15):
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=rho))


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_nan_tagged_distinct_from_null(self):
        assert canonical_json(float("nan")) == '"__nan__"'
        assert canonical_json(None) == "null"

    def test_numpy_scalars_and_arrays_reduce(self):
        assert canonical_json(np.int64(3)) == canonical_json(3)
        assert canonical_json(np.array([1, 2])) == canonical_json([1, 2])

    def test_dataclasses_reduce(self):
        a = canonical_json(AnalysisConfig(n_rings=3, rho=15))
        b = canonical_json(AnalysisConfig(n_rings=3, rho=15))
        assert a == b

    def test_unserializable_raises_not_repr(self):
        with pytest.raises(StoreError):
            canonical_json(object())


class TestSeedFingerprint:
    def test_spawned_children_differ_only_by_spawn_key(self):
        root = np.random.SeedSequence(7)
        a, b = root.spawn(2)
        fa, fb = seed_fingerprint(a), seed_fingerprint(b)
        assert fa["entropy"] == fb["entropy"]
        assert fa["spawn_key"] != fb["spawn_key"]

    def test_tuple_seed(self):
        fp = seed_fingerprint((42, 7, 0))
        assert fp["entropy"] == [42, 7, 0]

    def test_stable_across_calls(self):
        assert seed_fingerprint(123) == seed_fingerprint(123)


class TestTaskKey:
    def test_deterministic(self):
        k1 = task_key(ProbabilisticRelay(0.3), cfg(), 7, "vector", "phase")
        k2 = task_key(ProbabilisticRelay(0.3), cfg(), 7, "vector", "phase")
        assert k1 == k2
        assert len(k1) == 64 and set(k1) <= set("0123456789abcdef")

    @pytest.mark.parametrize(
        "variant",
        [
            dict(policy=ProbabilisticRelay(0.4)),
            dict(config=cfg(rho=20)),
            dict(seed=8),
            dict(engine="des"),
            dict(alignment="jitter"),
            dict(reuse_deployment=True),
        ],
    )
    def test_every_input_is_in_the_key(self, variant):
        base = dict(
            policy=ProbabilisticRelay(0.3),
            config=cfg(),
            seed=7,
            engine="vector",
            alignment="phase",
            reuse_deployment=False,
        )
        k_base = task_key(
            base["policy"],
            base["config"],
            base["seed"],
            base["engine"],
            base["alignment"],
            reuse_deployment=base["reuse_deployment"],
        )
        changed = {**base, **variant}
        k_changed = task_key(
            changed["policy"],
            changed["config"],
            changed["seed"],
            changed["engine"],
            changed["alignment"],
            reuse_deployment=changed["reuse_deployment"],
        )
        assert k_base != k_changed

    def test_spawned_children_get_distinct_keys(self):
        root = np.random.SeedSequence(7)
        a, b = root.spawn(2)
        ka = task_key(ProbabilisticRelay(0.3), cfg(), a, "vector", "phase")
        kb = task_key(ProbabilisticRelay(0.3), cfg(), b, "vector", "phase")
        assert ka != kb


class TestSweepKey:
    def test_order_sensitive(self):
        a = task_key(ProbabilisticRelay(0.3), cfg(), 1, "vector", "phase")
        b = task_key(ProbabilisticRelay(0.3), cfg(), 2, "vector", "phase")
        assert sweep_key([a, b]) != sweep_key([b, a])

    def test_deterministic(self):
        a = task_key(ProbabilisticRelay(0.3), cfg(), 1, "vector", "phase")
        assert sweep_key([a]) == sweep_key([a])
