"""Sweep journals: fresh/resume semantics and torn-line tolerance."""

import json

import pytest

from repro.errors import StoreCorruptionError
from repro.store import SweepJournal

SWEEP = "a" * 64
KEY1 = "1" * 64
KEY2 = "2" * 64


@pytest.fixture
def path(tmp_path):
    return tmp_path / "sweep.jsonl"


class TestFresh:
    def test_header_written(self, path):
        SweepJournal(path, SWEEP, 10).close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["sweep"] == SWEEP and header["n_tasks"] == 10

    def test_append_and_len(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
            j.append(3, KEY2)
            assert len(j) == 2
        assert len(path.read_text().splitlines()) == 3

    def test_append_idempotent(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
            j.append(0, KEY1)
        assert len(path.read_text().splitlines()) == 2

    def test_fresh_overwrites_existing(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
        j2 = SweepJournal(path, SWEEP, 10, resume=False)
        assert j2.completed == {}
        j2.close()


class TestResume:
    def test_resume_loads_completions(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
            j.append(3, KEY2)
        j2 = SweepJournal(path, SWEEP, 10, resume=True)
        assert j2.completed == {0: KEY1, 3: KEY2}
        j2.append(5, KEY1)
        j2.close()
        j3 = SweepJournal(path, SWEEP, 10, resume=True)
        assert set(j3.completed) == {0, 3, 5}
        j3.close()

    def test_resume_missing_file_starts_fresh(self, path):
        j = SweepJournal(path, SWEEP, 10, resume=True)
        assert j.completed == {}
        j.close()

    def test_torn_final_line_discarded(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
        with path.open("a") as fh:
            fh.write('{"task": 1, "ke')  # crash mid-append
        j2 = SweepJournal(path, SWEEP, 10, resume=True)
        assert j2.completed == {0: KEY1}
        j2.close()

    def test_malformed_interior_line_raises(self, path):
        with SweepJournal(path, SWEEP, 10) as j:
            j.append(0, KEY1)
        text = path.read_text().splitlines()
        text.insert(1, "garbage")
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(StoreCorruptionError):
            SweepJournal(path, SWEEP, 10, resume=True)

    def test_wrong_sweep_raises(self, path):
        SweepJournal(path, SWEEP, 10).close()
        with pytest.raises(StoreCorruptionError):
            SweepJournal(path, "b" * 64, 10, resume=True)

    def test_non_journal_file_raises(self, path):
        path.write_text("not a journal\n")
        with pytest.raises(StoreCorruptionError):
            SweepJournal(path, SWEEP, 10, resume=True)
