"""``repro-report``: span analysis, section rendering, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import report, spans
from repro.obs.export import SpanJsonlSink
from repro.obs.spans import SpanEvent
from repro.sim.config import SimulationConfig
from repro.sim.runner import sweep_grid

SEED = 20050113
CFG = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3))


def _span(name, *, start, dur, span_id, parent_id=None, cat="t", **counters):
    return SpanEvent(
        name=name,
        cat=cat,
        start=start,
        dur=dur,
        span_id=span_id,
        parent_id=parent_id,
        pid=1,
        tid=1,
        counters={k: float(v) for k, v in counters.items()},
    )


@pytest.fixture
def tree():
    """root(1.0s) -> a(0.6s) -> leaf(0.2s); root -> b(0.1s)."""
    return [
        _span("root", start=0.0, dur=1.0, span_id=1),
        _span("a", start=0.1, dur=0.6, span_id=2, parent_id=1),
        _span("leaf", start=0.2, dur=0.2, span_id=3, parent_id=2),
        _span("b", start=0.8, dur=0.1, span_id=4, parent_id=1),
    ]


class TestSpanAnalysis:
    def test_self_times(self, tree):
        selfs = report.self_times(tree)
        assert selfs[1] == pytest.approx(1.0 - 0.6 - 0.1)
        assert selfs[2] == pytest.approx(0.4)
        assert selfs[3] == pytest.approx(0.2)

    def test_self_time_clamped_at_zero(self):
        # Two overlapping (threaded) children outlast the parent.
        spans_ = [
            _span("p", start=0.0, dur=0.5, span_id=1),
            _span("c1", start=0.0, dur=0.4, span_id=2, parent_id=1),
            _span("c2", start=0.0, dur=0.4, span_id=3, parent_id=1),
        ]
        assert report.self_times(spans_)[1] == 0.0

    def test_aggregate_sorts_by_self_time(self, tree):
        rows = report.aggregate_spans(tree)
        assert rows[0][0] == "a"  # 0.4s self beats root's 0.3s
        names = [r[0] for r in rows]
        assert names.index("a") < names.index("root") < names.index("leaf")

    def test_tree_lines_nested_with_shares(self, tree):
        lines = report.span_tree_lines(tree)
        assert lines[0].startswith("root")
        assert lines[1].startswith("  a")
        assert lines[2].startswith("    leaf")
        assert "100.0%" in lines[0]
        assert "60.0%" in lines[1]

    def test_orphan_promoted_to_root(self):
        orphan = [_span("lost", start=0.0, dur=0.1, span_id=7, parent_id=99)]
        lines = report.span_tree_lines(orphan)
        assert lines[0].startswith("lost")

    def test_sibling_elision(self):
        kids = [
            _span(f"k{i}", start=0.1 * i, dur=0.01, span_id=i + 2, parent_id=1)
            for i in range(15)
        ]
        spans_ = [_span("root", start=0.0, dur=2.0, span_id=1), *kids]
        text = "\n".join(report.span_tree_lines(spans_, max_children=12))
        assert "… 3 more siblings" in text

    def test_render_spans_empty(self):
        assert report.render_spans([]) == "no spans recorded"


class TestSections:
    def test_store_breakdown_from_span_counters(self):
        spans_ = [
            _span("store.lookup", start=0, dur=0.1, span_id=1, cat="store",
                  hits=7, misses=3, corrupt=0),
            _span("store.put", start=0.2, dur=0.1, span_id=2, cat="store", nbytes=500),
            _span("store.put", start=0.4, dur=0.1, span_id=3, cat="store", nbytes=700),
        ]
        text = report.render_store_breakdown(spans_, [])
        assert "hits            7 (70.0% hit)" in text
        assert "misses          3" in text
        assert "puts            2 (1200 bytes)" in text

    def test_store_breakdown_prefers_trace_events(self):
        from repro.obs.events import StoreAccess

        spans_ = [
            _span("store.lookup", start=0, dur=0.1, span_id=1, hits=99, misses=0)
        ]
        events = [StoreAccess(op="miss", key="x" * 64, n_results=0, nbytes=0)]
        text = report.render_store_breakdown(spans_, events)
        assert "misses          1" in text
        assert "hits            0" in text

    def test_store_breakdown_none_without_data(self):
        assert report.render_store_breakdown([], []) is None

    def test_search_steps_table(self):
        from repro.obs.events import SearchStep

        events = [
            SearchStep(stage="probe", rung=0, p=0.1, feasible=False, value=float("nan")),
            SearchStep(stage="verify", rung=2, p=0.5, feasible=True, value=3.25),
        ]
        text = report.render_search_steps(events)
        assert "1 surrogate probes, 1 MC verifications" in text
        assert "nan" in text and "3.2500" in text
        assert report.render_search_steps([]) is None

    def test_perf_deltas_with_alias(self):
        bench = {
            "current": {"m::fast": 1.0, "m::base": 2.0},
            "seed": {"m::fast": "baseline:m::base", "m::base": 2.0},
        }
        text = report.render_perf_deltas(bench)
        assert "-50.0%" in text  # fast is half of its alias baseline
        assert "+0.0%" in text or "-0.0%" in text

    def test_history_sparkline(self, tmp_path):
        hist = tmp_path / "hist.jsonl"
        with hist.open("w") as fh:
            for i, v in enumerate([1.0, 2.0, 4.0]):
                fh.write(json.dumps(
                    {"unix": i, "sha": f"sha{i}" * 5, "medians": {"m::b": v}}
                ) + "\n")
        text = report.render_history(hist)
        assert "3 runs" in text
        assert "▁" in text and "█" in text
        assert "4s" in text or "4.0" in text or "4e" in text


class TestFusedReport:
    @pytest.fixture
    def artifacts(self, tmp_path):
        """A real profiled sweep: spans.jsonl + manifest directory."""
        run_dir = tmp_path / "run"
        spans_path = run_dir / "spans.jsonl"
        run_dir.mkdir()
        with spans.capture_spans(SpanJsonlSink(spans_path)):
            sweep_grid(
                CFG, [20.0], [0.3, 0.7], 3, seed=SEED,
                store=tmp_path / "store", manifest_dir=run_dir,
            )
        return spans_path, run_dir / "manifest.json"

    def test_render_report_sections(self, artifacts):
        spans_path, manifest_path = artifacts
        text = report.render_report(
            spans_path=spans_path, manifest_path=manifest_path
        )
        assert "=== Run ===" in text
        assert "=== Wall-time attribution ===" in text
        assert "=== Store ===" in text
        assert "kind=sweep_grid" in text
        assert "sweep.grid" in text

    def test_markdown_mode(self, artifacts):
        spans_path, _ = artifacts
        text = report.render_report(spans_path=spans_path, markdown=True)
        assert "## Wall-time attribution" in text
        assert "```" in text

    def test_cli_success(self, artifacts, capsys):
        spans_path, manifest_path = artifacts
        rc = report.main(
            ["--spans", str(spans_path), "--manifest", str(manifest_path)]
        )
        assert rc == 0
        assert "Wall-time attribution" in capsys.readouterr().out

    def test_cli_no_inputs_exits_2(self, capsys):
        assert report.main([]) == 2
        assert "at least one input" in capsys.readouterr().err

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert report.main(["--spans", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such spans file" in capsys.readouterr().err

    def test_entry_point_runs_as_module(self, artifacts):
        import subprocess
        import sys

        spans_path, _ = artifacts
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", "--spans", str(spans_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "span tree" in proc.stdout


class TestAcceptance:
    """The PR's acceptance criterion: a cold profiled sweep exports a
    Chrome trace whose span tree accounts for >=90% of wall time, with
    store and engine phases attributed, and repro-report exits 0."""

    def test_cold_sweep_profile_coverage(self, tmp_path):
        import time

        from repro.obs.export import read_spans_jsonl, write_chrome_trace

        spans_path = tmp_path / "spans.jsonl"
        t0 = time.perf_counter()
        with spans.capture_spans(SpanJsonlSink(spans_path)):
            grid = sweep_grid(
                CFG, [20.0, 30.0], [0.3, 0.7], 5, seed=SEED,
                store=tmp_path / "store", manifest_dir=tmp_path,
            )
        wall = time.perf_counter() - t0
        assert len(grid) == 4

        recorded = list(read_spans_jsonl(spans_path))
        roots = [s for s in recorded if s.parent_id is None]
        assert [r.name for r in roots] == ["sweep.grid"]
        assert roots[0].dur >= 0.9 * wall

        cats = {s.cat for s in recorded}
        assert {"runner", "store", "engine"} <= cats

        trace_path = write_chrome_trace(recorded, tmp_path / "trace.json")
        doc = json.loads(trace_path.read_text())
        assert len(doc["traceEvents"]) == len(recorded)
        assert all(ev["ph"] == "X" for ev in doc["traceEvents"])

        rc = report.main(
            [
                "--spans", str(spans_path),
                "--manifest", str(tmp_path / "manifest.json"),
            ]
        )
        assert rc == 0
