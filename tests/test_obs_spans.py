"""The span profiler: nesting, counters, neutrality, and instrumentation."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import spans
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast
from repro.sim.runner import replicate, sweep_grid
from tests.test_obs_neutrality import assert_identical

SEED = 20050113
CFG = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3))


class TestProfilerCore:
    def test_disabled_by_default(self):
        prof = spans.profiler()
        assert prof.enabled is False
        assert prof.sinks == ()

    def test_begin_end_roundtrip(self):
        with spans.capture_spans() as buf:
            h = spans.profiler().begin("work", "test")
            event = h.end(items=3)
        assert event.name == "work"
        assert event.cat == "test"
        assert event.dur >= 0
        assert event.counters == {"items": 3.0}
        assert event.parent_id is None
        assert buf.named("work") == [event]

    def test_nesting_sets_parent_links(self):
        prof = spans.profiler()
        with spans.capture_spans() as buf:
            outer = prof.begin("outer")
            inner = prof.begin("inner")
            inner.end()
            outer.end()
        (ev_inner,) = buf.named("inner")
        (ev_outer,) = buf.named("outer")
        assert ev_inner.parent_id == ev_outer.span_id
        assert ev_outer.parent_id is None
        # Children close first, so completion order is inner then outer.
        assert [s.name for s in buf.spans] == ["inner", "outer"]

    def test_span_ids_unique_and_monotonic(self):
        prof = spans.profiler()
        with spans.capture_spans() as buf:
            for _ in range(5):
                prof.begin("a").end()
        ids = [s.span_id for s in buf.spans]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_add_accumulates_counters(self):
        prof = spans.profiler()
        with spans.capture_spans() as buf:
            h = prof.begin("sum")
            h.add(n=2)
            h.add(n=3, other=1)
            h.end(n=5)
        (ev,) = buf.spans
        assert ev.counters == {"n": 10.0, "other": 1.0}

    def test_raising_region_never_emits(self):
        prof = spans.profiler()
        with spans.capture_spans() as buf:
            outer = prof.begin("outer")
            prof.begin("abandoned")  # never ended (the region raised)
            outer.end()
            after = prof.begin("after")
            after.end()
        names = [s.name for s in buf.spans]
        assert "abandoned" not in names
        # The abandoned child was discarded from the stack, so "after"
        # is a root, not a child of the dead handle.
        (ev_after,) = buf.named("after")
        assert ev_after.parent_id is None

    def test_threads_get_independent_stacks(self):
        prof = spans.profiler()
        with spans.capture_spans() as buf:
            root = prof.begin("main-root")

            def work():
                h = prof.begin("thread-root")
                h.end()

            t = threading.Thread(target=work)
            t.start()
            t.join()
            root.end()
        (ev_thread,) = buf.named("thread-root")
        (ev_main,) = buf.named("main-root")
        # The other thread's span must NOT parent onto this thread's.
        assert ev_thread.parent_id is None
        assert ev_thread.tid != ev_main.tid
        assert ev_thread.pid == ev_main.pid

    def test_capture_detaches_on_exit(self):
        prof = spans.profiler()
        with spans.capture_spans():
            assert prof.enabled
        assert not prof.enabled
        assert prof.sinks == ()

    def test_capture_detaches_on_error(self):
        prof = spans.profiler()
        with pytest.raises(RuntimeError):
            with spans.capture_spans():
                raise RuntimeError("boom")
        assert not prof.enabled


class TestConvenienceForms:
    def test_span_context_manager(self):
        with spans.capture_spans() as buf:
            with spans.span("cm", "test") as h:
                assert h is not None
                h.add(x=1)
        (ev,) = buf.named("cm")
        assert ev.counters == {"x": 1.0}

    def test_span_yields_none_when_disabled(self):
        with spans.span("noop") as h:
            assert h is None

    def test_traced_decorator(self):
        @spans.traced(cat="test")
        def fn(a, b=1):
            return a + b

        assert fn(2, b=3) == 5  # disabled: plain call-through
        with spans.capture_spans() as buf:
            assert fn(2, b=3) == 5
        (ev,) = buf.spans
        assert ev.name.endswith("fn")
        assert ev.cat == "test"

    def test_dict_roundtrip(self):
        with spans.capture_spans() as buf:
            spans.profiler().begin("rt", "c").end(k=2)
        (ev,) = buf.spans
        assert spans.span_from_dict(spans.span_to_dict(ev)) == ev


class TestNeutrality:
    """Spans enabled must be bit-identical to spans disabled."""

    def test_engine_run_identical(self):
        plain = run_broadcast(ProbabilisticRelay(0.6), CFG, SEED)
        with spans.capture_spans() as buf:
            profiled = run_broadcast(ProbabilisticRelay(0.6), CFG, SEED)
        assert len(buf) > 0
        assert_identical(plain, profiled)

    def test_replicate_identical(self):
        plain = replicate(ProbabilisticRelay(0.5), CFG, 4, seed=SEED)
        with spans.capture_spans() as buf:
            profiled = replicate(ProbabilisticRelay(0.5), CFG, 4, seed=SEED)
        assert buf.named("runner.replicate")
        for a, b in zip(plain, profiled):
            assert_identical(a, b)

    def test_sweep_grid_identical_with_store(self, tmp_path):
        plain = sweep_grid(CFG, [20.0], [0.3, 0.7], 3, seed=SEED)
        with spans.capture_spans() as buf:
            stored = sweep_grid(
                CFG, [20.0], [0.3, 0.7], 3, seed=SEED, store=tmp_path / "store"
            )
        assert buf.named("sweep.grid")
        assert buf.named("store.put")
        for point in plain:
            for a, b in zip(plain[point], stored[point]):
                assert_identical(a, b)


class TestInstrumentation:
    def test_spans_do_not_force_per_run_engine(self, tmp_path):
        """Unlike slot tracing, span profiling keeps the batched engine."""
        with spans.capture_spans() as buf:
            sweep_grid(CFG, [20.0], [0.5], 4, seed=SEED)
        names = {s.name for s in buf.spans}
        assert "engine.run_batch" in names
        assert "engine.run" not in names

    def test_sweep_span_tree_shape(self, tmp_path):
        with spans.capture_spans() as buf:
            sweep_grid(
                CFG, [20.0], [0.3, 0.7], 3, seed=SEED, store=tmp_path / "store"
            )
        (root,) = buf.named("sweep.grid")
        assert root.parent_id is None
        assert root.counters["tasks"] == 6.0
        by_id = {s.span_id: s for s in buf.spans}
        for s in buf.spans:
            if s is root:
                continue
            # Every other span sits under the root via parent links.
            node = s
            hops = 0
            while node.parent_id is not None and hops < 20:
                node = by_id[node.parent_id]
                hops += 1
            assert node is root
        # The layers the report attributes time to are all present.
        cats = {s.cat for s in buf.spans}
        assert {"runner", "store", "engine"} <= cats

    def test_engine_run_spans_and_counters(self):
        with spans.capture_spans() as buf:
            result = run_broadcast(ProbabilisticRelay(0.6), CFG, SEED)
        (run_span,) = buf.named("engine.run")
        (loop_span,) = buf.named("engine.slot_loop")
        assert loop_span.parent_id == run_span.span_id
        assert run_span.counters["collisions"] == float(result.collisions)
        (deploy,) = buf.named("engine.deploy")
        assert deploy.counters["nodes"] > 0

    def test_warm_store_lookup_counters(self, tmp_path):
        store = tmp_path / "store"
        sweep_grid(CFG, [20.0], [0.5], 3, seed=SEED, store=store)
        with spans.capture_spans() as buf:
            sweep_grid(CFG, [20.0], [0.5], 3, seed=SEED, store=store)
        (lookup,) = buf.named("store.lookup")
        assert lookup.counters["hits"] == 3.0
        assert lookup.counters["misses"] == 0.0
        assert not buf.named("engine.run_batch")  # all cached, no sim
