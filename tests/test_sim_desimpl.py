"""The DES object engine: collision state machine and cross-validation."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.network.deployment import DiskDeployment
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.desimpl import DesBroadcastSimulation
from repro.sim.engine import run_broadcast


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


def line_deployment(n=4, spacing=0.9, n_rings=4):
    """Nodes in a line starting at the origin; radius 1 connects neighbors."""
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return DiskDeployment(positions=pos, radius=1.0, n_rings=n_rings)


class TestDeterminism:
    def test_same_seed_same_result(self, cfg):
        a = DesBroadcastSimulation(ProbabilisticRelay(0.5), cfg, 3).run()
        b = DesBroadcastSimulation(ProbabilisticRelay(0.5), cfg, 3).run()
        np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
        assert a.broadcasts_total == b.broadcasts_total


class TestLineTopology:
    def test_flooding_chain(self, cfg):
        """On a line, flooding relays hop by hop with no contention."""
        dep = line_deployment(n=4)
        res = DesBroadcastSimulation(
            SimpleFlooding(), cfg, 0, deployment=dep
        ).run()
        assert res.reachability == 1.0
        assert res.broadcasts_total == 4  # every node exactly once

    def test_silent_network_with_p_zero(self, cfg):
        dep = line_deployment(n=4)
        res = DesBroadcastSimulation(
            ProbabilisticRelay(0.0), cfg, 0, deployment=dep
        ).run()
        assert res.broadcasts_total == 1
        assert res.new_informed_by_slot.sum() == 1  # only node 1 in range


class TestCollisionStateMachine:
    def test_simultaneous_senders_collide_at_middle(self, cfg):
        """Three nodes: 0 and 2 both hear-range of 1, not of each other.

        Force both to relay in the same slot by giving the policy one
        slot per phase: after both are informed they must collide at 1...
        but 1 is the source here. Instead: star with outer pair informed
        simultaneously by center, then both relay in the only slot:
        their transmissions overlap at the center (already informed) and
        at nothing else — craft a 4-node path 1-0-2 with 3 next to 2.
        """
        # positions: center 0 at origin; 1 left; 2 right; 3 right of 2.
        pos = np.array([[0.0, 0.0], [-0.9, 0.0], [0.9, 0.0], [1.8, 0.0]])
        dep = DiskDeployment(positions=pos, radius=1.0, n_rings=2)
        one_slot = SimulationConfig(analysis=AnalysisConfig(n_rings=2, rho=1, slots=1))
        res = DesBroadcastSimulation(
            SimpleFlooding(), one_slot, 0, deployment=dep
        ).run()
        # Phase 1: source informs 1, 2. Phase 2: both relay in the single
        # slot; 3 hears only node 2 → informed; 0 hears both → collision.
        assert res.reachability == 1.0
        assert res.collisions >= 1

    def test_collision_blocks_reception(self):
        """With s = 1, two informed neighbors of a common target always
        collide; the target stays uninformed forever."""
        # 1 - 0 - 2, and target 3 in range of BOTH 1 and 2 but not 0.
        pos = np.array([[0.0, 0.0], [-0.8, 0.5], [0.8, 0.5], [0.0, 1.2]])
        dep = DiskDeployment(positions=pos, radius=1.0, n_rings=2)
        one_slot = SimulationConfig(analysis=AnalysisConfig(n_rings=2, rho=1, slots=1))
        res = DesBroadcastSimulation(
            SimpleFlooding(), one_slot, 0, deployment=dep
        ).run()
        # 3 hears 1 and 2 simultaneously every time: never informed.
        assert res.new_informed_by_slot.sum() == 2  # only 1 and 2
        assert res.reachability == pytest.approx(2 / 3)


class TestCrossValidation:
    def test_agrees_with_vector_engine_statistically(self):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=25))
        p = 0.4
        vec = [
            run_broadcast(ProbabilisticRelay(p), cfg, 100 + s).reachability
            for s in range(12)
        ]
        des = [
            DesBroadcastSimulation(ProbabilisticRelay(p), cfg, 200 + s).run().reachability
            for s in range(12)
        ]
        assert np.mean(des) == pytest.approx(np.mean(vec), abs=0.08)

    def test_broadcast_counts_agree_statistically(self):
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=25))
        vec = [
            run_broadcast(ProbabilisticRelay(0.4), cfg, s).broadcasts_total
            for s in range(12)
        ]
        des = [
            DesBroadcastSimulation(ProbabilisticRelay(0.4), cfg, 50 + s).run().broadcasts_total
            for s in range(12)
        ]
        assert np.mean(des) == pytest.approx(np.mean(vec), rel=0.2)


class TestJitterMode:
    def test_jitter_runs_and_informs(self, cfg):
        res = DesBroadcastSimulation(
            ProbabilisticRelay(0.5), cfg, 7, alignment="jitter"
        ).run()
        assert 0.0 < res.reachability <= 1.0

    def test_jitter_differs_from_aligned(self, cfg):
        a = DesBroadcastSimulation(ProbabilisticRelay(0.5), cfg, 7).run()
        b = DesBroadcastSimulation(
            ProbabilisticRelay(0.5), cfg, 7, alignment="jitter"
        ).run()
        assert not np.array_equal(a.new_informed_by_slot, b.new_informed_by_slot)

    def test_invalid_alignment(self, cfg):
        with pytest.raises(ConfigurationError):
            DesBroadcastSimulation(ProbabilisticRelay(0.5), cfg, 7, alignment="wavy")


class TestCfmRejected:
    def test_des_engine_is_cam_only(self, cfg):
        with pytest.raises(ProtocolError, match="CAM"):
            DesBroadcastSimulation(
                SimpleFlooding(), cfg.with_(channel="cfm"), 0
            )
