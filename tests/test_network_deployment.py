"""Disk deployments: source placement, populations, ring indexing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.deployment import DiskDeployment


class TestSampling:
    def test_source_at_origin(self, rng):
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        assert dep.source == 0
        np.testing.assert_allclose(dep.positions[0], [0.0, 0.0])

    def test_fixed_population(self, rng):
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        assert dep.n_field_nodes == round(20 * 9)
        assert dep.n_nodes == dep.n_field_nodes + 1

    def test_poisson_population_varies(self):
        counts = {
            DiskDeployment.sample(
                rho=20, n_rings=3, rng=np.random.default_rng(s), population="poisson"
            ).n_field_nodes
            for s in range(8)
        }
        assert len(counts) > 1

    def test_poisson_population_mean(self):
        counts = [
            DiskDeployment.sample(
                rho=20, n_rings=3, rng=np.random.default_rng(s), population="poisson"
            ).n_field_nodes
            for s in range(60)
        ]
        assert np.mean(counts) == pytest.approx(180, rel=0.1)

    def test_all_inside_field(self, rng):
        dep = DiskDeployment.sample(rho=30, n_rings=4, rng=rng)
        assert np.all(dep.radial_distances <= dep.field_radius + 1e-9)

    def test_invalid_population_mode(self, rng):
        with pytest.raises(ConfigurationError):
            DiskDeployment.sample(rho=20, n_rings=3, rng=rng, population="grid")

    def test_reproducible_under_seed(self):
        a = DiskDeployment.sample(rho=20, n_rings=3, rng=np.random.default_rng(5))
        b = DiskDeployment.sample(rho=20, n_rings=3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.positions, b.positions)


class TestValidation:
    def test_source_must_be_origin(self):
        pos = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="origin"):
            DiskDeployment(positions=pos, radius=1.0, n_rings=2)

    def test_nodes_outside_field_rejected(self):
        pos = np.array([[0.0, 0.0], [10.0, 0.0]])
        with pytest.raises(ValueError, match="outside"):
            DiskDeployment(positions=pos, radius=1.0, n_rings=2)

    def test_positions_read_only(self, rng):
        dep = DiskDeployment.sample(rho=10, n_rings=2, rng=rng)
        with pytest.raises(ValueError):
            dep.positions[1, 0] = 0.0


class TestDerived:
    def test_ring_indices(self):
        pos = np.array([[0.0, 0.0], [0.5, 0.0], [1.5, 0.0], [2.9, 0.0]])
        dep = DiskDeployment(positions=pos, radius=1.0, n_rings=3)
        assert list(dep.ring_indices()) == [1, 1, 2, 3]

    def test_empirical_rho_close_to_target(self, rng):
        dep = DiskDeployment.sample(rho=40, n_rings=5, rng=rng)
        # Border effects bias the mean degree down a little.
        assert dep.empirical_rho() == pytest.approx(40, rel=0.25)
        assert dep.empirical_rho() < 40

    def test_topology_radius_matches(self, rng):
        dep = DiskDeployment.sample(rho=15, n_rings=2, radius=2.0, rng=rng)
        topo = dep.topology()
        assert topo.radius == 2.0
        assert topo.n_nodes == dep.n_nodes
