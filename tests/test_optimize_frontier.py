"""Pareto-frontier maintenance: dominance, eviction, ties, order independence."""

from __future__ import annotations

import itertools

from repro.optimize import Evaluation, FrontierSet, OptimizeQuery, dominates

QUERY = OptimizeQuery(objectives=("latency", "energy"))


def _ev(p, lat, en, *, feasible=True):
    return Evaluation(
        p=p,
        reachability=0.9,
        latency=lat,
        energy=en,
        feasible=feasible,
        violation=0.0 if feasible else 0.1,
    )


class TestDominates:
    def test_strictly_better_on_all(self):
        assert dominates(_ev(0.2, 1.0, 5.0), _ev(0.3, 2.0, 9.0), QUERY)

    def test_better_on_one_equal_on_other(self):
        assert dominates(_ev(0.2, 1.0, 5.0), _ev(0.3, 1.0, 9.0), QUERY)

    def test_exact_tie_does_not_dominate(self):
        assert not dominates(_ev(0.2, 1.0, 5.0), _ev(0.3, 1.0, 5.0), QUERY)

    def test_trade_off_neither_dominates(self):
        a, b = _ev(0.2, 1.0, 9.0), _ev(0.3, 2.0, 5.0)
        assert not dominates(a, b, QUERY)
        assert not dominates(b, a, QUERY)

    def test_sense_aware_for_maximized_metric(self):
        query = OptimizeQuery(objectives=("reachability",))
        hi = Evaluation(p=0.4, reachability=0.9, latency=1, energy=1, feasible=True)
        lo = Evaluation(p=0.2, reachability=0.5, latency=1, energy=1, feasible=True)
        assert dominates(hi, lo, query)
        assert not dominates(lo, hi, query)


class TestFrontierSet:
    def test_non_dominated_points_coexist(self):
        front = FrontierSet(QUERY)
        assert front.consider(_ev(0.2, 1.0, 9.0))
        assert front.consider(_ev(0.5, 3.0, 4.0))
        assert len(front) == 2
        assert [e.p for e in front.points] == [0.2, 0.5]

    def test_dominated_offer_is_rejected(self):
        front = FrontierSet(QUERY)
        strong = _ev(0.2, 1.0, 5.0)
        front.consider(strong)
        assert not front.consider(_ev(0.3, 2.0, 9.0))
        assert front.points == (strong,)

    def test_dominating_offer_evicts(self):
        front = FrontierSet(QUERY)
        front.extend([_ev(0.3, 2.0, 9.0), _ev(0.6, 3.0, 8.0)])
        assert front.consider(_ev(0.2, 1.0, 5.0))
        assert [e.p for e in front.points] == [0.2]

    def test_infeasible_never_joins(self):
        front = FrontierSet(QUERY)
        assert not front.consider(_ev(0.2, 1.0, 5.0, feasible=False))
        assert len(front) == 0

    def test_exact_tie_keeps_lowest_p(self):
        front = FrontierSet(QUERY)
        front.consider(_ev(0.5, 1.0, 5.0))
        assert not front.consider(_ev(0.7, 1.0, 5.0))
        assert [e.p for e in front.points] == [0.5]
        # The lower-p twin replaces the resident.
        assert front.consider(_ev(0.3, 1.0, 5.0))
        assert [e.p for e in front.points] == [0.3]

    def test_membership_and_iteration(self):
        front = FrontierSet(QUERY)
        a = _ev(0.2, 1.0, 9.0)
        front.consider(a)
        assert a in front
        assert _ev(0.9, 9.0, 9.0) not in front
        assert list(front) == [a]

    def test_order_independent(self):
        pool = [
            _ev(0.1, 5.0, 5.0),
            _ev(0.2, 1.0, 9.0),
            _ev(0.3, 2.0, 5.0),
            _ev(0.4, 1.0, 9.0),  # objective tie with p=0.2
            _ev(0.5, 0.5, 20.0),
        ]
        reference = None
        for perm in itertools.permutations(pool):
            front = FrontierSet(QUERY)
            front.extend(list(perm))
            got = front.points
            if reference is None:
                reference = got
            assert got == reference
        assert reference is not None
        assert [e.p for e in reference] == [0.2, 0.3, 0.5]
