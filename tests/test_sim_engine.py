"""The vectorized slot-synchronous engine."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ProtocolError
from repro.network.deployment import DiskDeployment
from repro.protocols.base import RelayPolicy
from repro.protocols.pbcast import ProbabilisticRelay, SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=20))


class TestDeterminism:
    def test_same_seed_same_result(self, cfg):
        a = run_broadcast(ProbabilisticRelay(0.4), cfg, 77)
        b = run_broadcast(ProbabilisticRelay(0.4), cfg, 77)
        np.testing.assert_array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
        np.testing.assert_array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
        assert a.collisions == b.collisions

    def test_different_seeds_differ(self, cfg):
        a = run_broadcast(ProbabilisticRelay(0.4), cfg, 1)
        b = run_broadcast(ProbabilisticRelay(0.4), cfg, 2)
        assert (
            a.broadcasts_total != b.broadcasts_total
            or a.reachability != b.reachability
        )

    def test_seed_recorded(self, cfg):
        assert run_broadcast(SimpleFlooding(), cfg, 42).seed_entropy == 42


class TestCfmFlooding:
    def test_reaches_every_connected_node(self, cfg, rng):
        sim_cfg = cfg.with_(channel="cfm")
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        res = run_broadcast(SimpleFlooding(), sim_cfg, 3, deployment=dep)
        reachable = dep.topology().reachable_from(dep.source)
        expected = (reachable.sum() - 1) / dep.n_field_nodes
        assert res.reachability == pytest.approx(expected)

    def test_every_informed_node_broadcasts_once(self, cfg, rng):
        sim_cfg = cfg.with_(channel="cfm")
        res = run_broadcast(SimpleFlooding(), sim_cfg, 4)
        informed = int(res.new_informed_by_slot.sum())
        assert res.broadcasts_total == informed + 1  # plus the source

    def test_no_collisions_under_cfm(self, cfg):
        res = run_broadcast(SimpleFlooding(), cfg.with_(channel="cfm"), 5)
        assert res.collisions == 0


class TestCamSemantics:
    def test_collisions_happen_in_flooding(self, cfg):
        res = run_broadcast(SimpleFlooding(), cfg, 6)
        assert res.collisions > 0

    def test_receptions_at_most_one_per_slot_per_node(self, cfg):
        res = run_broadcast(SimpleFlooding(), cfg, 8)
        # Total successful receptions cannot exceed nodes * slots.
        n_slots = len(res.new_informed_by_slot)
        assert res.total_rx <= (res.n_field_nodes + 1) * n_slots

    def test_energy_ledger_consistent(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.5), cfg, 9)
        assert res.total_tx == res.broadcasts_total

    def test_carrier_sense_reduces_reachability_within_budget(self):
        base_cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=40))
        cs_cfg = base_cfg.with_(carrier_sense=True)
        base = np.mean(
            [
                run_broadcast(ProbabilisticRelay(0.5), base_cfg, s).reachability_after_phases(4)
                for s in range(6)
            ]
        )
        cs = np.mean(
            [
                run_broadcast(ProbabilisticRelay(0.5), cs_cfg, s).reachability_after_phases(4)
                for s in range(6)
            ]
        )
        assert cs < base

    def test_half_duplex_changes_outcome(self, cfg):
        a = run_broadcast(SimpleFlooding(), cfg, 10)
        b = run_broadcast(SimpleFlooding(), cfg.with_(half_duplex=True), 10)
        # Same seed, same deployment/choices; half-duplex removes some
        # receptions so the totals must not increase.
        assert b.total_rx <= a.total_rx


class TestTraceConsistency:
    def test_trace_matches_slot_series(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.3), cfg, 11)
        assert res.trace.new_by_phase_ring.sum() == pytest.approx(
            res.new_informed_by_slot.sum()
        )
        assert res.trace.broadcasts_by_phase.sum() == pytest.approx(
            res.broadcasts_by_slot.sum()
        )

    def test_trace_denominator_is_realized_population(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.3), cfg, 12)
        assert res.trace.config.n_nodes == pytest.approx(res.n_field_nodes)

    def test_reachability_metrics_agree(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.3), cfg, 13)
        # Phase-level trace metric equals slot-level at integer phases.
        assert res.trace.reachability_after(2) == pytest.approx(
            res.reachability_after_phases(2)
        )

    def test_p_zero_only_source(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.0), cfg, 14)
        assert res.broadcasts_total == 1
        # Everyone in range of the source hears its (collision-free) slot.
        assert res.new_informed_by_slot.sum() > 0

    def test_informed_mask_consistent(self, cfg):
        res = run_broadcast(ProbabilisticRelay(0.3), cfg, 21)
        assert res.informed_mask is not None
        # Mask counts the source plus every slot-series arrival.
        assert res.informed_mask.sum() == res.new_informed_by_slot.sum() + 1
        assert res.informed_mask[0]  # the source


class TestPolicyContractEnforcement:
    def test_bad_schedule_shape_raises(self, cfg):
        class Broken(RelayPolicy):
            name = "broken"

            def schedule(self, new_nodes, first_senders, rng, ctx):
                return np.ones(1, dtype=bool), np.zeros(1, dtype=int)

        with pytest.raises(ProtocolError, match="mismatched"):
            run_broadcast(Broken(), cfg, 15)

    def test_bad_slot_range_raises(self, cfg):
        class BadSlots(RelayPolicy):
            name = "bad-slots"

            def schedule(self, new_nodes, first_senders, rng, ctx):
                n = len(new_nodes)
                return np.ones(n, dtype=bool), np.full(n, 99)

        with pytest.raises(ProtocolError, match="slots outside"):
            run_broadcast(BadSlots(), cfg, 16)

    def test_bad_confirm_shape_raises(self, cfg):
        class BadConfirm(ProbabilisticRelay):
            name = "bad-confirm"

            def confirm(self, node_ids, duplicate_receptions, rng, ctx, overheard=None):
                return np.ones(len(node_ids) + 1, dtype=bool)

        with pytest.raises(ProtocolError, match="confirm"):
            run_broadcast(BadConfirm(0.5), cfg, 17)


class TestSharedDeployment:
    def test_common_random_numbers_comparison(self, cfg, rng):
        dep = DiskDeployment.sample(rho=20, n_rings=3, rng=rng)
        flood = run_broadcast(SimpleFlooding(), cfg, 18, deployment=dep)
        pb = run_broadcast(ProbabilisticRelay(0.2), cfg, 18, deployment=dep)
        assert flood.n_field_nodes == pb.n_field_nodes
        assert pb.broadcasts_total < flood.broadcasts_total
