"""Text table rendering."""

import numpy as np
import pytest

from repro.utils.tables import format_mapping, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular block

    def test_none_and_nan_render_as_dash(self):
        text = format_table(["x"], [[None], [float("nan")]])
        assert text.count("-") >= 2

    def test_precision(self):
        text = format_table(["x"], [[1 / 3]], precision=2)
        assert "0.33" in text and "0.333" not in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_bool_cells(self):
        assert "True" in format_table(["x"], [[True]])


class TestFormatSeries:
    def test_basic(self):
        text = format_series("p", [0.1, 0.2], {"reach": [0.5, 0.6]})
        assert "p" in text and "reach" in text and "0.6000" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            format_series("p", [0.1], {"y": [1, 2]})

    def test_numpy_inputs(self):
        text = format_series("x", np.arange(3), {"y": np.ones(3)})
        assert "1.0000" in text


def test_format_mapping():
    text = format_mapping({"alpha": 1.5, "beta": "note"})
    assert "alpha" in text and "1.5000" in text and "note" in text
