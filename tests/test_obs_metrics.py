"""The metrics registry and its hot-path instrumentation points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collision.slots import SlotCollisionTable
from repro.obs import metrics
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.engine import run_broadcast


@pytest.fixture(autouse=True)
def _clean_registry():
    reg = metrics.registry()
    assert not reg.enabled
    yield
    reg.disable()
    reg.reset()


class TestPrimitives:
    def test_counter(self):
        c = metrics.Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_last_write_wins(self):
        g = metrics.Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_timer_accumulates(self):
        t = metrics.Timer()
        t.add(0.5)
        t.add(1.5)
        assert t.total == 2.0
        assert t.count == 2
        assert t.mean == 1.0

    def test_timer_context_manager(self):
        t = metrics.Timer()
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_empty_timer_mean_is_zero(self):
        assert metrics.Timer().mean == 0.0


class TestRegistry:
    def test_name_bound_to_kind(self):
        reg = metrics.MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError, match="is a Counter"):
            reg.timer("x")

    def test_same_name_same_object(self):
        reg = metrics.MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_shapes(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.5)
        reg.timer("t").add(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 2.5
        assert snap["t"] == {"total_s": 0.25, "count": 1, "mean_s": 0.25}

    def test_reset_drops_values(self):
        reg = metrics.MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_collect_enables_then_restores(self):
        reg = metrics.registry()
        assert not reg.enabled
        with metrics.collect() as inner:
            assert inner is reg
            assert reg.enabled
        assert not reg.enabled

    def test_collect_resets_by_default(self):
        reg = metrics.registry()
        reg.counter("stale").inc()
        with metrics.collect():
            pass
        assert "stale" not in reg.snapshot()

    def test_collect_no_reset_keeps_values(self):
        reg = metrics.registry()
        with metrics.collect():
            reg.counter("kept").inc()
        with metrics.collect(reset=False):
            reg.counter("kept").inc()
        assert reg.snapshot()["kept"] == 2


class TestInstrumentation:
    def test_engine_reports_run_metrics(self, small_sim_config):
        with metrics.collect() as reg:
            result = run_broadcast(ProbabilisticRelay(0.6), small_sim_config, 3)
        snap = reg.snapshot()
        assert snap["engine.runs"] == 1
        assert snap["engine.slots_resolved"] == len(result.new_informed_by_slot)
        assert snap["engine.collisions"] == result.collisions
        assert snap["engine.run"]["count"] == 1
        assert snap["cam.slots"] >= 1
        assert snap["cam.gather"]["total_s"] >= 0.0

    def test_run_result_carries_snapshot(self, small_sim_config):
        with metrics.collect():
            result = run_broadcast(ProbabilisticRelay(0.6), small_sim_config, 3)
        assert result.metrics is not None
        assert result.metrics["engine.runs"] == 1

    def test_disabled_leaves_result_metrics_none(self, small_sim_config):
        result = run_broadcast(ProbabilisticRelay(0.6), small_sim_config, 3)
        assert result.metrics is None

    def test_collision_table_hits_and_rebuilds(self):
        table = SlotCollisionTable(initial_kmax=16)
        with metrics.collect() as reg:
            table.mu(np.arange(10), 3)  # cold: builds the s=3 table
            table.mu(np.arange(10), 3)  # warm: pure lookup
            table.mu(np.arange(10), 3)
        snap = reg.snapshot()
        assert snap["collision.table_rebuilds"] == 1
        assert snap["collision.table_hits"] == 2

    def test_runner_task_timer(self, small_sim_config):
        from repro.sim.runner import replicate

        with metrics.collect() as reg:
            replicate(ProbabilisticRelay(0.5), small_sim_config, 2, 7, block_size=0)
        assert reg.snapshot()["runner.task"]["count"] == 2

    def test_runner_block_timer(self, small_sim_config):
        """The default dispatch batches replications: one block timing,
        run counting via engine.runs."""
        from repro.sim.runner import replicate

        with metrics.collect() as reg:
            replicate(ProbabilisticRelay(0.5), small_sim_config, 2, 7)
        snap = reg.snapshot()
        assert snap["runner.block"]["count"] == 1
        assert snap["engine.runs"] == 2


class TestBlockTimerOverStore:
    """``runner.block`` stays consistent when the store re-forms blocks.

    A store-backed sweep only executes the *missing* tasks, re-grouped
    into fresh replication blocks — the block timer must count those
    re-formed blocks, not the nominal grid shape."""

    SEED = 20050113

    def _grid(self, config, store, **kw):
        from repro.sim.runner import sweep_grid

        return sweep_grid(
            config, [20.0], [0.3, 0.7], 3, self.SEED, store=store, **kw
        )

    def test_cold_sweep_one_block_per_point(self, small_sim_config, tmp_path):
        with metrics.collect() as reg:
            self._grid(small_sim_config, tmp_path / "store")
        snap = reg.snapshot()
        assert snap["runner.block"]["count"] == 2  # one per (rho, p)
        assert snap["engine.runs"] == 6

    def test_partially_warm_store_reforms_blocks(self, small_sim_config, tmp_path):
        from repro.sim.runner import sweep_grid

        store = tmp_path / "store"
        # Warm one grid point only: its 3 tasks become cache hits.
        sweep_grid(small_sim_config, [20.0], [0.3], 3, self.SEED, store=store)
        with metrics.collect() as reg:
            self._grid(small_sim_config, store)
        snap = reg.snapshot()
        # Only the p=0.7 misses re-form into a block; hits time nothing.
        assert snap["runner.block"]["count"] == 1
        assert snap["engine.runs"] == 3
        assert snap["runner.block"]["total_s"] >= snap["engine.run_batch"]["total_s"]

    def test_fully_warm_store_times_no_blocks(self, small_sim_config, tmp_path):
        store = tmp_path / "store"
        self._grid(small_sim_config, store)
        with metrics.collect() as reg:
            self._grid(small_sim_config, store)
        snap = reg.snapshot()
        assert "runner.block" not in snap
        assert "engine.runs" not in snap

    def test_block_totals_nest_run_totals(self, small_sim_config, tmp_path):
        """Every engine run happens inside a block, so the block timer's
        total must dominate the engine timer's, with matching counts."""
        with metrics.collect() as reg:
            self._grid(small_sim_config, tmp_path / "store")
        snap = reg.snapshot()
        assert snap["engine.batches"] == snap["runner.block"]["count"]
        assert snap["engine.run_batch"]["count"] == snap["engine.batches"]
        assert snap["runner.block"]["total_s"] >= snap["engine.run_batch"]["total_s"]
