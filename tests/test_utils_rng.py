"""RNG stream management: reproducibility and independence guarantees."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_seed_sequence, spawn_rngs


class TestAsSeedSequence:
    def test_from_int(self):
        ss = as_seed_sequence(42)
        assert isinstance(ss, np.random.SeedSequence)
        assert ss.entropy == 42

    def test_from_none(self):
        assert isinstance(as_seed_sequence(None), np.random.SeedSequence)

    def test_passthrough(self):
        ss = np.random.SeedSequence(7)
        assert as_seed_sequence(ss) is ss

    def test_rejects_generator(self):
        with pytest.raises(TypeError, match="Generator"):
            as_seed_sequence(np.random.default_rng(0))


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_reproducible(self):
        a = [g.random() for g in spawn_rngs(99, 3)]
        b = [g.random() for g in spawn_rngs(99, 3)]
        assert a == b

    def test_streams_differ(self):
        gens = spawn_rngs(0, 4)
        draws = {float(g.random()) for g in gens}
        assert len(draws) == 4


class TestRngFactory:
    def test_streams_are_deterministic_functions_of_root(self):
        f1, f2 = RngFactory(5), RngFactory(5)
        assert f1.generator().random() == f2.generator().random()

    def test_successive_streams_independent(self):
        f = RngFactory(5)
        a, b = f.generator(), f.generator()
        assert a.random() != b.random()

    def test_streams_issued_counter(self):
        f = RngFactory(0)
        f.generator()
        f.generators(3)
        assert f.streams_issued == 4

    def test_bulk_matches_single_draws_count(self):
        f = RngFactory(1)
        gens = f.generators(8)
        assert len(gens) == 8

    def test_different_roots_differ(self):
        assert RngFactory(1).generator().random() != RngFactory(2).generator().random()
