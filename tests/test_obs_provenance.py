"""Provenance manifests: writing, loading, and full reproduction."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.obs import provenance
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, sweep_grid


@pytest.fixture
def sim_config():
    return SimulationConfig(
        analysis=AnalysisConfig(n_rings=3, rho=20.0, slots=3), carrier_sense=True
    )


class TestWriteLoad:
    def test_basic_document(self, tmp_path, sim_config):
        path = provenance.write_manifest(
            tmp_path,
            "replicate",
            config=sim_config,
            seed=42,
            params={"replications": 3},
            started=provenance.start_clock(),
        )
        assert path == tmp_path / provenance.MANIFEST_NAME
        doc = provenance.load_manifest(path)
        assert doc["schema"] == provenance.MANIFEST_SCHEMA
        assert doc["kind"] == "replicate"
        assert doc["config_class"] == "SimulationConfig"
        assert doc["seed"] == {"entropy": 42, "spawn_key": []}
        assert doc["params"] == {"replications": 3}
        assert doc["wall_time_s"] >= 0.0
        assert doc["cpu_time_s"] >= 0.0
        assert "python" in doc["versions"]

    def test_load_accepts_directory(self, tmp_path):
        provenance.write_manifest(tmp_path, "x")
        assert provenance.load_manifest(tmp_path)["kind"] == "x"

    def test_load_rejects_other_json(self, tmp_path):
        bad = tmp_path / "manifest.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a repro manifest"):
            provenance.load_manifest(bad)

    def test_git_sha_recorded(self, tmp_path):
        doc = provenance.load_manifest(provenance.write_manifest(tmp_path, "x"))
        # The repo under test is a git checkout, so the SHA must resolve.
        assert doc["git"] is not None
        assert len(doc["git"]["sha"]) == 40

    def test_document_is_pure_json(self, tmp_path, sim_config):
        path = provenance.write_manifest(
            tmp_path,
            "x",
            config=sim_config,
            params={"arr": np.arange(3), "f": np.float64(1.5), "nan": float("nan")},
        )
        doc = json.loads(path.read_text())
        assert doc["params"]["arr"] == [0, 1, 2]
        assert doc["params"]["f"] == 1.5
        assert doc["params"]["nan"] is None


class TestReconstruction:
    def test_config_round_trip_simulation(self, tmp_path, sim_config):
        provenance.write_manifest(tmp_path, "x", config=sim_config)
        restored = provenance.config_from_manifest(provenance.load_manifest(tmp_path))
        assert restored == sim_config

    def test_config_round_trip_analysis(self, tmp_path):
        cfg = AnalysisConfig(n_rings=4, rho=60.0, slots=3)
        provenance.write_manifest(tmp_path, "x", config=cfg)
        restored = provenance.config_from_manifest(provenance.load_manifest(tmp_path))
        assert restored == cfg

    def test_config_from_manifest_does_not_mutate(self, tmp_path, sim_config):
        provenance.write_manifest(tmp_path, "x", config=sim_config)
        doc = provenance.load_manifest(tmp_path)
        provenance.config_from_manifest(doc)
        assert "analysis" in doc["config"]  # loader must not pop the caller's dict

    def test_seed_round_trip_with_spawn_key(self, tmp_path):
        child = np.random.SeedSequence(1234).spawn(3)[2]
        provenance.write_manifest(tmp_path, "x", seed=child)
        restored = provenance.seed_from_manifest(provenance.load_manifest(tmp_path))
        assert restored.entropy == child.entropy
        assert restored.spawn_key == child.spawn_key
        assert (
            restored.generate_state(4).tolist() == child.generate_state(4).tolist()
        )

    def test_missing_sections_raise(self, tmp_path):
        provenance.write_manifest(tmp_path, "x")
        doc = provenance.load_manifest(tmp_path)
        with pytest.raises(ValueError, match="no config"):
            provenance.config_from_manifest(doc)
        with pytest.raises(ValueError, match="no seed"):
            provenance.seed_from_manifest(doc)


class TestRunnerManifests:
    def test_replicate_writes_manifest(self, tmp_path, sim_config):
        results = replicate(
            ProbabilisticRelay(0.5), sim_config, 2, 11, manifest_dir=tmp_path
        )
        doc = provenance.load_manifest(tmp_path)
        assert doc["kind"] == "replicate"
        assert doc["params"]["replications"] == 2
        assert doc["params"]["engine"] == "vector"
        assert len(results) == 2

    def test_sweep_grid_manifest_reproduces_run(self, tmp_path, sim_config):
        grid = sweep_grid(
            sim_config, [20.0], [0.4, 0.8], 2, seed=77, manifest_dir=tmp_path
        )
        doc = provenance.load_manifest(tmp_path)
        assert doc["kind"] == "sweep_grid"

        # Close the loop: rebuild config + seed + grids from the manifest
        # alone and re-run; every replication must match bit for bit.
        cfg2 = provenance.config_from_manifest(doc)
        seed2 = provenance.seed_from_manifest(doc)
        grid2 = sweep_grid(
            cfg2,
            doc["params"]["rho_grid"],
            doc["params"]["p_grid"],
            doc["params"]["replications"],
            seed=seed2,
        )
        assert grid.keys() == grid2.keys()
        for key in grid:
            for a, b in zip(grid[key], grid2[key], strict=True):
                assert np.array_equal(a.new_informed_by_slot, b.new_informed_by_slot)
                assert np.array_equal(a.broadcasts_by_slot, b.broadcasts_by_slot)
                assert a.collisions == b.collisions
                assert a.total_tx == b.total_tx
                assert a.seed_entropy == b.seed_entropy
