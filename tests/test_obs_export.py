"""Span export: JSONL round-trip and Chrome trace-event shape."""

from __future__ import annotations

import json

from repro.obs import spans
from repro.obs.export import (
    SpanJsonlSink,
    read_spans_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import SpanEvent


def _span(name="work", start=0.5, dur=0.25, span_id=1, parent_id=None, **counters):
    return SpanEvent(
        name=name,
        cat="test",
        start=start,
        dur=dur,
        span_id=span_id,
        parent_id=parent_id,
        pid=100,
        tid=200,
        counters={k: float(v) for k, v in counters.items()},
    )


class TestJsonl:
    def test_sink_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with spans.capture_spans(SpanJsonlSink(path)):
            outer = spans.profiler().begin("outer", "t")
            spans.profiler().begin("inner", "t").end(n=2)
            outer.end()
        loaded = list(read_spans_jsonl(path))
        assert [s.name for s in loaded] == ["inner", "outer"]
        assert loaded[0].parent_id == loaded[1].span_id
        assert loaded[0].counters == {"n": 2.0}

    def test_sink_appends_and_closes(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = SpanJsonlSink(path)
        sink.emit(_span(span_id=1))
        sink.close()
        with SpanJsonlSink(path) as sink2:
            sink2.emit(_span(span_id=2))
        assert [s.span_id for s in read_spans_jsonl(path)] == [1, 2]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        body = json.dumps(spans.span_to_dict(_span()))
        path.write_text(f"\n{body}\n\n")
        assert len(list(read_spans_jsonl(path))) == 1


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace([_span(start=0.5, dur=0.25, hits=3)])
        assert doc["displayTimeUnit"] == "ms"
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["ts"] == 500_000 and isinstance(ev["ts"], int)
        assert ev["dur"] == 250_000 and isinstance(ev["dur"], int)
        assert ev["pid"] == 100 and ev["tid"] == 200
        assert ev["args"] == {"span_id": 1, "hits": 3.0}

    def test_events_sorted_by_start(self):
        doc = to_chrome_trace(
            [_span(name="late", start=2.0, span_id=2), _span(name="early", start=1.0)]
        )
        assert [e["name"] for e in doc["traceEvents"]] == ["early", "late"]

    def test_parent_id_in_args_empty_cat_defaults(self):
        child = SpanEvent(
            name="c", cat="", start=0.0, dur=0.1, span_id=2, parent_id=1,
            pid=1, tid=1, counters={},
        )
        (ev,) = to_chrome_trace([child])["traceEvents"]
        assert ev["cat"] == "span"
        assert ev["args"]["parent_id"] == 1

    def test_write_creates_parents_and_valid_json(self, tmp_path):
        out = write_chrome_trace([_span()], tmp_path / "deep" / "trace.json")
        assert out.exists()
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == 1

    def test_live_capture_exports(self, tmp_path):
        with spans.capture_spans() as buf:
            h = spans.profiler().begin("root", "runner")
            spans.profiler().begin("leaf", "engine").end()
            h.end()
        doc = to_chrome_trace(buf.spans)
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["root", "leaf"]  # start order, not close order
