"""End-to-end: replicate/sweep_grid through the store.

The acceptance bar for the store: results are bit-identical with the
store off, cold, warm, or resumed after a mid-sweep crash — for both
engines.
"""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import SchedulerError
from repro.obs import metrics as obs_metrics
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, simulate_pb, sweep_grid
from repro.store import DiskStore


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


class _FailingRelay(ProbabilisticRelay):
    """Fails mid-sweep; inherits the literal repr, hence the same store
    keys as the policy it impersonates — the "crashed code, fixed,
    re-run" scenario."""

    def schedule(self, new_nodes, first_senders, rng, ctx):
        raise RuntimeError("simulated crash")


def assert_runs_identical(a, b, *, expect_cached_metrics_none=False):
    assert len(a) == len(b)
    for x, y in zip(a, b, strict=True):
        np.testing.assert_array_equal(x.new_informed_by_slot, y.new_informed_by_slot)
        np.testing.assert_array_equal(x.broadcasts_by_slot, y.broadcasts_by_slot)
        assert x.new_informed_by_slot.dtype == y.new_informed_by_slot.dtype
        assert (x.n_field_nodes, x.collisions, x.total_tx, x.total_rx) == (
            y.n_field_nodes,
            y.collisions,
            y.total_tx,
            y.total_rx,
        )
        assert x.seed_entropy == y.seed_entropy
        np.testing.assert_array_equal(
            x.trace.new_by_phase_ring, y.trace.new_by_phase_ring
        )
        assert x.trace.config == y.trace.config
        if x.informed_mask is not None:
            np.testing.assert_array_equal(x.informed_mask, y.informed_mask)
        if expect_cached_metrics_none:
            assert y.metrics is None


@pytest.mark.parametrize("engine", ["vector", "des"])
class TestReplicateThroughStore:
    def test_off_cold_warm_identical(self, cfg, tmp_path, engine):
        policy = ProbabilisticRelay(0.5)
        off = replicate(policy, cfg, 3, seed=9, engine=engine)
        cold = replicate(
            policy, cfg, 3, seed=9, engine=engine, store=tmp_path / "s"
        )
        warm = replicate(
            policy, cfg, 3, seed=9, engine=engine, store=tmp_path / "s"
        )
        assert_runs_identical(off, cold)
        assert_runs_identical(off, warm, expect_cached_metrics_none=True)

    def test_store_accepts_path_or_instance(self, cfg, tmp_path, engine):
        store = DiskStore(tmp_path / "s")
        a = replicate(ProbabilisticRelay(0.5), cfg, 2, seed=1, engine=engine, store=store)
        b = replicate(
            ProbabilisticRelay(0.5), cfg, 2, seed=1, engine=engine,
            store=str(tmp_path / "s"),
        )
        assert_runs_identical(a, b)


@pytest.mark.parametrize("engine", ["vector", "des"])
class TestSweepGridThroughStore:
    RHOS = (12, 18)
    PS = (0.3, 0.8)

    def test_off_cold_warm_identical(self, cfg, tmp_path, engine):
        off = sweep_grid(cfg, self.RHOS, self.PS, 2, seed=7, engine=engine)
        cold = sweep_grid(
            cfg, self.RHOS, self.PS, 2, seed=7, engine=engine,
            store=tmp_path / "s",
        )
        with obs_metrics.collect() as reg:
            warm = sweep_grid(
                cfg, self.RHOS, self.PS, 2, seed=7, engine=engine,
                store=tmp_path / "s",
            )
            snap = reg.snapshot()
        n_tasks = len(self.RHOS) * len(self.PS) * 2
        assert snap["store.hits"] == n_tasks
        assert snap.get("store.misses", 0) == 0
        for key in off:
            assert_runs_identical(off[key], cold[key])
            assert_runs_identical(
                off[key], warm[key], expect_cached_metrics_none=True
            )

    def test_kill_and_resume_bit_identical(self, cfg, tmp_path, engine):
        """A sweep that crashes partway resumes without recomputing the
        completed tasks, and the final grid matches a clean run."""
        clean = sweep_grid(cfg, self.RHOS, self.PS, 2, seed=7, engine=engine)

        def crashing_factory(p):
            # p = 0.8 tasks die; p = 0.3 tasks complete and persist.
            return _FailingRelay(p) if p > 0.5 else ProbabilisticRelay(p)

        with pytest.raises(SchedulerError):
            sweep_grid(
                cfg, self.RHOS, self.PS, 2, seed=7, engine=engine,
                policy_factory=crashing_factory,
                store=tmp_path / "s", retries=0,
            )
        with obs_metrics.collect() as reg:
            resumed = sweep_grid(
                cfg, self.RHOS, self.PS, 2, seed=7, engine=engine,
                store=tmp_path / "s", resume=True,
            )
            snap = reg.snapshot()
        # The surviving half was served from the store, not recomputed.
        n_tasks = len(self.RHOS) * len(self.PS) * 2
        assert snap["store.hits"] == n_tasks // 2
        assert snap["store.misses"] == n_tasks // 2
        for key in clean:
            assert_runs_identical(clean[key], resumed[key])

    def test_corrupted_entry_recomputed(self, cfg, tmp_path, engine):
        clean = sweep_grid(
            cfg, self.RHOS, self.PS, 2, seed=7, engine=engine,
            store=tmp_path / "s",
        )
        store = DiskStore(tmp_path / "s")
        victim = next(iter(store.keys()))
        store.path_for(victim).write_text("bit rot")
        with obs_metrics.collect() as reg:
            healed = sweep_grid(
                cfg, self.RHOS, self.PS, 2, seed=7, engine=engine, store=store
            )
            snap = reg.snapshot()
        assert snap["store.corrupt"] == 1
        assert snap["store.misses"] == 1
        for key in clean:
            assert_runs_identical(clean[key], healed[key])
        assert store.verify() == []


class TestSimulatePbParity:
    def test_forwards_alignment_progress_manifest(self, cfg, tmp_path, capsys):
        """simulate_pb forwards every keyword to replicate (it used to
        silently drop alignment, progress, and manifest_dir)."""
        manifest_dir = tmp_path / "prov"
        via_pb = simulate_pb(
            cfg, 0.4, replications=2, seed=3,
            engine="des", alignment="jitter", manifest_dir=manifest_dir,
        )
        direct = replicate(
            ProbabilisticRelay(0.4), cfg, 2, seed=3,
            engine="des", alignment="jitter",
        )
        assert_runs_identical(direct, via_pb)
        assert (manifest_dir / "manifest.json").exists()

    def test_forwards_store(self, cfg, tmp_path):
        a = simulate_pb(cfg, 0.4, replications=2, seed=3, store=tmp_path / "s")
        b = simulate_pb(cfg, 0.4, replications=2, seed=3, store=tmp_path / "s")
        assert_runs_identical(a, b, expect_cached_metrics_none=True)

    def test_alignment_changes_des_results(self, cfg):
        phase = simulate_pb(cfg, 0.4, replications=2, seed=3, engine="des")
        jitter = simulate_pb(
            cfg, 0.4, replications=2, seed=3, engine="des", alignment="jitter"
        )
        assert any(
            x.new_informed_by_slot.shape != y.new_informed_by_slot.shape
            or (x.new_informed_by_slot != y.new_informed_by_slot).any()
            for x, y in zip(phase, jitter, strict=True)
        )
