"""Appendix A: the carrier-sense ring model."""

import numpy as np
import pytest

from repro.analysis.carrier_model import CarrierRingModel
from repro.analysis.config import AnalysisConfig
from repro.analysis.ring_model import RingModel


@pytest.fixture
def cfg():
    return AnalysisConfig(n_rings=4, rho=30.0, quad_nodes=48)


class TestReductions:
    def test_unit_carrier_factor_recovers_base_model(self, cfg):
        """carrier_factor=1 empties the B annulus, so mu'(g, 0, s) = mu(g, s)."""
        base = RingModel(cfg).run(0.3, max_phases=6)
        carrier = CarrierRingModel(cfg.with_(carrier_factor=1.0)).run(
            0.3, max_phases=6
        )
        n = min(base.phases, carrier.phases)
        np.testing.assert_allclose(
            base.new_by_phase_ring[:n],
            carrier.new_by_phase_ring[:n],
            rtol=1e-6,
            atol=1e-8,
        )

    def test_p_zero_identical(self, cfg):
        a = RingModel(cfg).run(0.0)
        b = CarrierRingModel(cfg).run(0.0)
        assert b.informed_total == pytest.approx(a.informed_total)


class TestCarrierEffect:
    def test_carrier_sensing_reduces_reachability(self, cfg):
        """Extra collisions can only slow the wave at matched (p, horizon)."""
        base = RingModel(cfg).run(0.4, max_phases=5).reachability_after(5)
        cs = CarrierRingModel(cfg).run(0.4, max_phases=5).reachability_after(5)
        assert cs < base

    def test_wider_carrier_hurts_more(self, cfg):
        r2 = CarrierRingModel(cfg.with_(carrier_factor=2.0)).run(
            0.4, max_phases=5
        ).reachability_after(5)
        r3 = CarrierRingModel(cfg.with_(carrier_factor=3.0)).run(
            0.4, max_phases=5
        ).reachability_after(5)
        assert r3 <= r2 + 1e-9

    def test_carrier_neighbors_magnitude(self, cfg):
        """With a full-density previous phase, h(x) ≈ rho * (c^2 - 1) interior."""
        model = CarrierRingModel(cfg)
        full = cfg.delta * model.partition.ring_areas
        h = model.carrier_neighbors(3, full)
        # Ring 3 of 4: part of the 2r disk leaves the field, so <= 3 rho.
        assert np.all(h <= 3.0 * cfg.rho + 1e-9)
        assert h.max() > 1.5 * cfg.rho  # but a sizable annulus is inside


class TestInvariants:
    def test_conservation(self, cfg):
        trace = CarrierRingModel(cfg).run(0.5, max_phases=60)
        assert trace.informed_total <= cfg.n_nodes * (1 + 1e-9)

    def test_arrivals_nonnegative(self, cfg):
        trace = CarrierRingModel(cfg).run(0.5, max_phases=30)
        assert np.all(trace.new_by_phase_ring >= -1e-12)

    def test_optimal_p_lower_than_base(self):
        """More collision surface favors a smaller broadcast probability."""
        cfg = AnalysisConfig(n_rings=4, rho=60, quad_nodes=48)
        grid = np.arange(0.02, 1.001, 0.04)
        base_vals = []
        cs_vals = []
        base = RingModel(cfg)
        cs = CarrierRingModel(cfg)
        for p in grid:
            base_vals.append(base.run(p, max_phases=5).reachability_after(5))
            cs_vals.append(cs.run(p, max_phases=5).reachability_after(5))
        assert grid[int(np.argmax(cs_vals))] <= grid[int(np.argmax(base_vals))]
