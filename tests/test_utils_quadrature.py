"""Gauss-Legendre rule: exactness and interface contracts."""

import numpy as np
import pytest

from repro.utils.quadrature import GaussLegendreRule


class TestUnitRule:
    def test_weights_sum_to_one(self):
        rule = GaussLegendreRule.unit(16)
        assert rule.weights.sum() == pytest.approx(1.0, abs=1e-14)

    def test_nodes_inside_interval(self):
        rule = GaussLegendreRule.unit(32)
        assert np.all(rule.nodes > 0) and np.all(rule.nodes < 1)

    def test_polynomial_exactness(self):
        # n-point Gauss-Legendre integrates degree 2n-1 exactly.
        rule = GaussLegendreRule.unit(4)
        for k in range(8):
            est = rule.integrate(rule.nodes**k)
            assert est == pytest.approx(1.0 / (k + 1), rel=1e-12)

    def test_smooth_non_polynomial(self):
        rule = GaussLegendreRule.unit(24)
        est = rule.integrate(np.exp(rule.nodes))
        assert est == pytest.approx(np.e - 1.0, rel=1e-12)

    def test_vectorized_integrate(self):
        rule = GaussLegendreRule.unit(8)
        fam = np.stack([rule.nodes, rule.nodes**2])  # (2, n)
        out = rule.integrate(fam, axis=1)
        assert out == pytest.approx([0.5, 1.0 / 3.0], rel=1e-12)

    def test_wrong_length_rejected(self):
        rule = GaussLegendreRule.unit(8)
        with pytest.raises(ValueError, match="nodes"):
            rule.integrate(np.ones(9))

    def test_immutable_arrays(self):
        rule = GaussLegendreRule.unit(8)
        with pytest.raises(ValueError):
            rule.nodes[0] = 0.5


class TestScaled:
    def test_scaled_interval(self):
        rule = GaussLegendreRule.unit(10)
        x, w = rule.scaled(2.0, 5.0)
        assert np.all((x > 2.0) & (x < 5.0))
        assert w.sum() == pytest.approx(3.0, rel=1e-13)
        # integrate x^2 over [2, 5] = (125 - 8) / 3
        assert np.dot(w, x**2) == pytest.approx(117.0 / 3.0, rel=1e-12)

    def test_empty_interval_rejected(self):
        rule = GaussLegendreRule.unit(4)
        with pytest.raises(ValueError):
            rule.scaled(1.0, 1.0)
