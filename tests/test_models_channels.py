"""CFM and CAM channel semantics on hand-crafted topologies."""

import numpy as np
import pytest

from repro.models.cam import CollisionAwareChannel
from repro.models.cfm import CollisionFreeChannel
from repro.network.topology import Topology


@pytest.fixture
def line():
    """Five nodes in a line, unit spacing, radius 1.1: i ~ i±1."""
    pos = np.array([[float(i), 0.0] for i in range(5)])
    return Topology(pos, radius=1.1)


@pytest.fixture
def star():
    """Node 0 at center, nodes 1-4 around it; only 0 hears everyone."""
    pos = np.array([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
    return Topology(pos, radius=1.2)


def as_set(arr):
    return set(int(x) for x in arr)


class TestCfm:
    def test_single_transmitter_reaches_all_neighbors(self, line):
        ch = CollisionFreeChannel(line)
        d = ch.resolve_slot(np.array([2]))
        assert as_set(d.receivers) == {1, 3}
        assert list(d.senders) == [2, 2]

    def test_concurrent_transmitters_all_deliver(self, line):
        ch = CollisionFreeChannel(line)
        d = ch.resolve_slot(np.array([0, 4]))
        assert as_set(d.receivers) == {1, 3}
        assert len(d.collided) == 0

    def test_tie_break_lowest_sender(self, star):
        ch = CollisionFreeChannel(star)
        d = ch.resolve_slot(np.array([3, 1]))
        idx = list(d.receivers).index(0)
        assert d.senders[idx] == 1  # lowest transmitter id wins

    def test_empty_slot(self, line):
        d = CollisionFreeChannel(line).resolve_slot(np.array([], dtype=int))
        assert len(d.receivers) == 0

    def test_duplicate_transmitter_ids_deduped(self, line):
        ch = CollisionFreeChannel(line)
        d = ch.resolve_slot(np.array([2, 2]))
        assert as_set(d.receivers) == {1, 3}


class TestCam:
    def test_single_transmitter_clean(self, line):
        ch = CollisionAwareChannel(line)
        d = ch.resolve_slot(np.array([2]))
        assert as_set(d.receivers) == {1, 3}
        assert len(d.collided) == 0

    def test_common_neighbor_collides(self, line):
        # 0 and 2 both reach node 1: node 1 gets nothing.
        ch = CollisionAwareChannel(line)
        d = ch.resolve_slot(np.array([0, 2]))
        assert 1 not in as_set(d.receivers)
        assert 1 in as_set(d.collided)
        # Node 3 hears only 2: clean.
        assert 3 in as_set(d.receivers)

    def test_star_center_collision(self, star):
        ch = CollisionAwareChannel(star)
        d = ch.resolve_slot(np.array([1, 2, 3, 4]))
        assert 0 in as_set(d.collided)
        assert len(d.receivers) == 0  # leaves hear only the center, which is silent

    def test_senders_identified(self, line):
        ch = CollisionAwareChannel(line)
        d = ch.resolve_slot(np.array([0, 3]))
        senders = dict(zip(d.receivers.tolist(), d.senders.tolist(), strict=True))
        assert senders[1] == 0
        assert senders[4] == 3
        # Node 2 hears 3 only (1 is not transmitting): clean from 3.
        assert senders[2] == 3

    def test_transmitter_can_receive_without_half_duplex(self, line):
        # Node 2 transmits; node 1 also transmits; 2 hears 1 and 3... 1 and 3
        # are 2's neighbors; 1 transmits so 2 hears exactly one tx (from 1)?
        # 2's transmitting neighbors: {1}. So 2 receives from 1.
        ch = CollisionAwareChannel(line)
        d = ch.resolve_slot(np.array([1, 2]))
        senders = dict(zip(d.receivers.tolist(), d.senders.tolist(), strict=True))
        assert senders.get(2) == 1  # the model has no half-duplex by default


class TestCamCarrierSense:
    def test_carrier_sense_blocks_hidden_interferer(self):
        # Line of 3 with spacing 1: radius 1.1, carrier 2.2.
        # Node 2 transmits; node 0 transmits. Node 1 is in range of both
        # (collision even without carrier sense). Stretch: spacing so that
        # 0 is outside range of 1 but inside carrier range.
        pos = np.array([[0.0, 0.0], [1.5, 0.0], [2.5, 0.0]])
        topo = Topology(pos, radius=1.2, carrier_radius=2.4)
        ch = CollisionAwareChannel(topo, carrier_sense=True)
        # 1 ~ 2 in range; 0 is 1.5 from 1 (carrier only).
        d = ch.resolve_slot(np.array([0, 2]))
        assert 1 not in as_set(d.receivers)  # 0's carrier energy jams 1

    def test_without_carrier_sense_same_scenario_delivers(self):
        pos = np.array([[0.0, 0.0], [1.5, 0.0], [2.5, 0.0]])
        topo = Topology(pos, radius=1.2)
        ch = CollisionAwareChannel(topo)
        d = ch.resolve_slot(np.array([0, 2]))
        assert 1 in as_set(d.receivers)  # 0 is out of range: no collision

    def test_carrier_sense_still_delivers_clean_slots(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        topo = Topology(pos, radius=1.2)
        ch = CollisionAwareChannel(topo, carrier_sense=True)
        d = ch.resolve_slot(np.array([0]))
        assert as_set(d.receivers) == {1}
