"""parallel_map: ordering, fallbacks, chunking."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.utils.parallel import default_workers, parallel_map


def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


class TestSerialPath:
    def test_results_in_order(self):
        assert parallel_map(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_empty(self):
        assert parallel_map(_square, [], workers=1) == []

    def test_small_lists_stay_serial_even_with_workers(self):
        pids = parallel_map(_pid_of, [1, 2], workers=4, min_parallel=4)
        assert set(pids) == {os.getpid()}

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in range(5)), workers=1) == [
            0,
            1,
            4,
            9,
            16,
        ]


class TestParallelPath:
    def test_results_in_order_across_processes(self):
        out = parallel_map(_square, range(37), workers=2, min_parallel=2)
        assert out == [x * x for x in range(37)]

    def test_explicit_chunk_size(self):
        out = parallel_map(_square, range(11), workers=2, chunk_size=3, min_parallel=2)
        assert out == [x * x for x in range(11)]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, range(4), workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, range(10), workers=2, chunk_size=0, min_parallel=2)


def test_default_workers_at_least_one():
    assert default_workers() >= 1
