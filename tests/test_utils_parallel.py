"""parallel_map: ordering, fallbacks, chunking, failure capture."""

import os

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.utils.parallel import TaskFailure, default_workers, parallel_map


def _square(x):
    return x * x


def _pid_of(_):
    return os.getpid()


def _explode_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x * x


class TestSerialPath:
    def test_results_in_order(self):
        assert parallel_map(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_empty(self):
        assert parallel_map(_square, [], workers=1) == []

    def test_small_lists_stay_serial_even_with_workers(self):
        pids = parallel_map(_pid_of, [1, 2], workers=4, min_parallel=4)
        assert set(pids) == {os.getpid()}

    def test_generator_input(self):
        assert parallel_map(_square, (x for x in range(5)), workers=1) == [
            0,
            1,
            4,
            9,
            16,
        ]


class TestParallelPath:
    def test_results_in_order_across_processes(self):
        out = parallel_map(_square, range(37), workers=2, min_parallel=2)
        assert out == [x * x for x in range(37)]

    def test_explicit_chunk_size(self):
        out = parallel_map(_square, range(11), workers=2, chunk_size=3, min_parallel=2)
        assert out == [x * x for x in range(11)]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, range(4), workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, range(10), workers=2, chunk_size=0, min_parallel=2)


class TestFailureCapture:
    def test_error_names_failed_indices(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_explode_on_odd, range(6), workers=1)
        assert err.value.failures[0].index == 1
        assert [f.index for f in err.value.failures] == [1, 3, 5]
        assert "3/6" in str(err.value)

    def test_error_chains_first_cause(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_explode_on_odd, [1], workers=1)
        assert isinstance(err.value.__cause__, ValueError)

    def test_return_exceptions_preserves_siblings(self):
        out = parallel_map(
            _explode_on_odd, range(6), workers=1, return_exceptions=True
        )
        assert out[0::2] == [0, 4, 16]
        for i in (1, 3, 5):
            assert isinstance(out[i], TaskFailure)
            assert out[i].index == i
            assert isinstance(out[i].error, ValueError)
            assert "odd input" in out[i].traceback_str

    def test_failures_survive_the_pool(self):
        out = parallel_map(
            _explode_on_odd,
            range(20),
            workers=2,
            min_parallel=2,
            return_exceptions=True,
        )
        failed = [r.index for r in out if isinstance(r, TaskFailure)]
        assert failed == list(range(1, 20, 2))
        assert [r for r in out if not isinstance(r, TaskFailure)] == [
            x * x for x in range(0, 20, 2)
        ]

    def test_pool_path_raises_with_all_indices(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_explode_on_odd, range(20), workers=2, min_parallel=2)
        assert [f.index for f in err.value.failures] == list(range(1, 20, 2))

    def test_progress_hook_sees_failures(self):
        chunks = []
        parallel_map(
            _explode_on_odd,
            range(4),
            workers=1,
            progress=lambda done, total, chunk: chunks.extend(chunk),
            return_exceptions=True,
        )
        assert sum(isinstance(c, TaskFailure) for c in chunks) == 2


def test_default_workers_at_least_one():
    assert default_workers() >= 1
