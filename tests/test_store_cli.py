"""``python -m repro.store``: subcommands and exit codes."""

import json

import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate
from repro.store import DiskStore, task_key
from repro.store.cli import main


@pytest.fixture
def store_dir(tmp_path):
    store = DiskStore(tmp_path / "store")
    cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))
    runs = replicate(ProbabilisticRelay(0.5), cfg, 1, seed=7)
    for seed in (1, 2):
        store.put(
            task_key(ProbabilisticRelay(0.5), cfg, seed, "vector", "phase"), runs
        )
    store.flush_index()
    return store


class TestStats:
    def test_text(self, store_dir, capsys):
        assert main(["stats", str(store_dir.root)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out

    def test_json(self, store_dir, capsys):
        assert main(["stats", str(store_dir.root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 2


class TestVerify:
    def test_clean_store(self, store_dir, capsys):
        assert main(["verify", str(store_dir.root)]) == 0
        assert "ok: 2 entries" in capsys.readouterr().out

    def test_corrupt_entry_exit_1(self, store_dir, capsys):
        key = next(iter(store_dir.keys()))
        store_dir.path_for(key).write_text("garbage")
        assert main(["verify", str(store_dir.root)]) == 1
        assert key in capsys.readouterr().err

    def test_delete_removes_corrupt(self, store_dir):
        key = next(iter(store_dir.keys()))
        store_dir.path_for(key).write_text("garbage")
        assert main(["verify", str(store_dir.root), "--delete"]) == 1
        assert main(["verify", str(store_dir.root)]) == 0
        assert len(list(store_dir.keys())) == 1


class TestGc:
    def test_dry_run_keeps_entries(self, store_dir, capsys):
        assert main(["gc", str(store_dir.root), "--max-bytes", "0", "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert len(list(store_dir.keys())) == 2

    def test_gc_evicts(self, store_dir):
        assert main(["gc", str(store_dir.root), "--max-bytes", "0"]) == 0
        assert list(store_dir.keys()) == []


class TestInvalidate:
    def test_all(self, store_dir):
        assert main(["invalidate", str(store_dir.root), "--all"]) == 0
        assert list(store_dir.keys()) == []

    def test_prefix(self, store_dir):
        keys = list(store_dir.keys())
        assert main(["invalidate", str(store_dir.root), keys[0][:8]]) == 0
        assert list(store_dir.keys()) == keys[1:]

    def test_no_match_exit_1(self, store_dir):
        # No hex key can start with "zz".
        assert main(["invalidate", str(store_dir.root), "zz"]) == 1

    def test_neither_all_nor_prefix_exit_2(self, store_dir):
        assert main(["invalidate", str(store_dir.root)]) == 2

    def test_both_all_and_prefix_exit_2(self, store_dir):
        assert main(["invalidate", str(store_dir.root), "ab", "--all"]) == 2


def test_unreadable_store_exit_2(tmp_path, capsys):
    root = tmp_path / "bad"
    root.mkdir()
    (root / "store.json").write_text('{"schema": "other/9"}')
    assert main(["stats", str(root)]) == 2
    assert "error:" in capsys.readouterr().err
