"""Grid deployments: lattice structure and engine compatibility."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.network.grid import GridDeployment
from repro.protocols.pbcast import SimpleFlooding
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast


class TestLattice:
    def test_counts(self):
        dep = GridDeployment(side=5)
        assert dep.n_nodes == 25
        assert dep.n_field_nodes == 24

    def test_source_at_center(self):
        dep = GridDeployment(side=7)
        assert dep.source == 0
        np.testing.assert_allclose(dep.positions[0], [0.0, 0.0])

    def test_even_side_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            GridDeployment(side=4)

    def test_four_neighbor_topology(self):
        dep = GridDeployment(side=5)
        topo = dep.topology()
        degrees = topo.degrees
        # Interior nodes have 4 neighbors, corners 2, edges 3.
        assert degrees.max() == 4
        assert degrees.min() == 2
        assert sorted(np.bincount(degrees)[2:].tolist()) == sorted([4, 12, 9])

    def test_no_diagonal_links(self):
        dep = GridDeployment(side=3)
        topo = dep.topology()
        # Source (center) connects to exactly the 4 axial neighbors.
        assert len(topo.neighbors(dep.source)) == 4

    def test_ring_indices_cover_lattice(self):
        dep = GridDeployment(side=9)
        rings = dep.ring_indices()
        assert rings.min() == 1
        assert rings.max() <= dep.n_rings
        assert rings[dep.source] == 1

    def test_spacing_scales_positions(self):
        dep = GridDeployment(side=3, spacing=2.0)
        assert dep.radius == 2.0
        dists = np.hypot(dep.positions[:, 0], dep.positions[:, 1])
        assert dists.max() == pytest.approx(np.hypot(2.0, 2.0))


class TestEngineCompatibility:
    def test_cfm_flooding_reaches_all(self):
        dep = GridDeployment(side=9)
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=5, rho=4), channel="cfm")
        res = run_broadcast(SimpleFlooding(), cfg, 0, deployment=dep)
        assert res.reachability == 1.0

    def test_trace_population_matches(self):
        dep = GridDeployment(side=9)
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=5, rho=4), channel="cfm")
        res = run_broadcast(SimpleFlooding(), cfg, 0, deployment=dep)
        assert res.trace.config.n_nodes == pytest.approx(dep.n_field_nodes)
        assert res.trace.new_by_phase_ring.sum() == res.new_informed_by_slot.sum()

    def test_cam_flooding_on_grid(self):
        # The lattice has few common neighbors, so CAM flooding still
        # spreads but loses some receptions to collisions.
        dep = GridDeployment(side=9)
        cfg = SimulationConfig(analysis=AnalysisConfig(n_rings=5, rho=4))
        res = run_broadcast(SimpleFlooding(), cfg, 1, deployment=dep)
        assert 0.3 < res.reachability <= 1.0
        assert res.collisions > 0
