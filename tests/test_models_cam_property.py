"""Property tests: the CAM channel vs a brute-force reference resolver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cam import CollisionAwareChannel
from repro.models.cfm import CollisionFreeChannel
from repro.network.topology import Topology


def brute_force_cam(positions, radius, transmitters, carrier_radius=None):
    """Assumption 6 applied literally, one receiver at a time."""
    tx = sorted(set(int(t) for t in transmitters))
    receivers, senders, collided = [], [], []
    for v in range(len(positions)):
        in_range = [
            t
            for t in tx
            if t != v and np.hypot(*(positions[v] - positions[t])) <= radius
        ]
        audible = in_range
        if carrier_radius is not None:
            audible = [
                t
                for t in tx
                if t != v
                and np.hypot(*(positions[v] - positions[t])) <= carrier_radius
            ]
        if len(in_range) == 1 and len(audible) == 1:
            receivers.append(v)
            senders.append(in_range[0])
        elif len(in_range) >= 2:
            collided.append(v)
    return receivers, senders, collided


@st.composite
def slot_scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-3.0, 3.0, size=(n, 2))
    k = draw(st.integers(min_value=0, max_value=n))
    transmitters = rng.choice(n, size=k, replace=False)
    return positions, transmitters


class TestAgainstBruteForce:
    @given(scenario=slot_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_transmission_range_semantics(self, scenario):
        positions, transmitters = scenario
        topo = Topology(positions, radius=1.0)
        channel = CollisionAwareChannel(topo)
        d = channel.resolve_slot(transmitters)
        exp_r, exp_s, exp_c = brute_force_cam(positions, 1.0, transmitters)
        assert list(d.receivers) == exp_r
        assert list(d.senders) == exp_s
        assert list(d.collided) == exp_c

    @given(scenario=slot_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_carrier_sense_semantics(self, scenario):
        positions, transmitters = scenario
        topo = Topology(positions, radius=1.0, carrier_radius=2.0)
        channel = CollisionAwareChannel(topo, carrier_sense=True)
        d = channel.resolve_slot(transmitters)
        exp_r, exp_s, _ = brute_force_cam(
            positions, 1.0, transmitters, carrier_radius=2.0
        )
        assert list(d.receivers) == exp_r
        assert list(d.senders) == exp_s

    @given(scenario=slot_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_cam_receivers_subset_of_cfm(self, scenario):
        positions, transmitters = scenario
        topo = Topology(positions, radius=1.0)
        cam = CollisionAwareChannel(topo).resolve_slot(transmitters)
        cfm = CollisionFreeChannel(topo).resolve_slot(transmitters)
        assert set(cam.receivers.tolist()) <= set(cfm.receivers.tolist())

    @given(scenario=slot_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_carrier_sense_only_removes_receivers(self, scenario):
        positions, transmitters = scenario
        plain_topo = Topology(positions, radius=1.0)
        cs_topo = Topology(positions, radius=1.0, carrier_radius=2.0)
        plain = CollisionAwareChannel(plain_topo).resolve_slot(transmitters)
        cs = CollisionAwareChannel(cs_topo, carrier_sense=True).resolve_slot(
            transmitters
        )
        assert set(cs.receivers.tolist()) <= set(plain.receivers.tolist())

    @given(scenario=slot_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_senders_are_transmitters_in_range(self, scenario):
        positions, transmitters = scenario
        topo = Topology(positions, radius=1.0)
        d = CollisionAwareChannel(topo).resolve_slot(transmitters)
        tx = set(int(t) for t in transmitters)
        for r, s in zip(d.receivers.tolist(), d.senders.tolist(), strict=True):
            assert s in tx
            assert np.hypot(*(positions[r] - positions[s])) <= 1.0
