"""BroadcastTrace metric extraction on hand-constructed traces."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.trace import BroadcastTrace
from repro.errors import InfeasibleConstraintError


@pytest.fixture
def config():
    # N = rho * P^2 = 10 * 4 = 40 nodes.
    return AnalysisConfig(n_rings=2, rho=10.0)


@pytest.fixture
def trace(config):
    # Phase arrivals: 10, 20, 6 => cumulative reach 0.25, 0.75, 0.90.
    new = np.array([[10.0, 0.0], [12.0, 8.0], [2.0, 4.0]])
    bcast = np.array([1.0, 4.0, 8.0])
    return BroadcastTrace(config=config, p=0.4, new_by_phase_ring=new, broadcasts_by_phase=bcast)


class TestConstruction:
    def test_shape_validation(self, config):
        with pytest.raises(ValueError, match="new_by_phase_ring"):
            BroadcastTrace(config, 0.5, np.zeros((2, 3)), np.zeros(2))

    def test_broadcast_shape_validation(self, config):
        with pytest.raises(ValueError, match="broadcasts_by_phase"):
            BroadcastTrace(config, 0.5, np.zeros((2, 2)), np.zeros(3))

    def test_basic_series(self, trace):
        assert trace.phases == 3
        np.testing.assert_allclose(trace.new_by_phase, [10, 20, 6])
        assert trace.informed_total == 36.0
        assert trace.broadcasts_total == 13.0

    def test_informed_by_ring(self, trace):
        np.testing.assert_allclose(trace.informed_by_ring(), [24.0, 12.0])


class TestReachabilityAfter:
    def test_at_phase_boundaries(self, trace):
        assert trace.reachability_after(1) == pytest.approx(0.25)
        assert trace.reachability_after(2) == pytest.approx(0.75)
        assert trace.reachability_after(3) == pytest.approx(0.90)

    def test_fractional_interpolation(self, trace):
        # Halfway through phase 2: 0.25 + 0.5 * 0.50.
        assert trace.reachability_after(1.5) == pytest.approx(0.50)

    def test_zero(self, trace):
        assert trace.reachability_after(0) == 0.0

    def test_beyond_trace_returns_final(self, trace):
        assert trace.reachability_after(50) == pytest.approx(0.90)


class TestLatencyTo:
    def test_exact_boundary(self, trace):
        assert trace.latency_to(0.75) == pytest.approx(2.0)

    def test_interpolated(self, trace):
        assert trace.latency_to(0.5) == pytest.approx(1.5)

    def test_inside_first_phase(self, trace):
        assert trace.latency_to(0.125) == pytest.approx(0.5)

    def test_infeasible_raises(self, trace):
        with pytest.raises(InfeasibleConstraintError, match="peaks at"):
            trace.latency_to(0.95)

    def test_duality_with_reachability_after(self, trace):
        # reachability_after(latency_to(t)) == t on the increasing part.
        for target in (0.2, 0.5, 0.8):
            t = trace.latency_to(target)
            assert trace.reachability_after(t) == pytest.approx(target)


class TestBroadcastAccounting:
    def test_broadcasts_at_boundaries(self, trace):
        assert trace.broadcasts_at(1) == pytest.approx(1.0)
        assert trace.broadcasts_at(3) == pytest.approx(13.0)

    def test_broadcasts_at_fraction(self, trace):
        assert trace.broadcasts_at(2.5) == pytest.approx(1 + 4 + 0.5 * 8)

    def test_broadcasts_to_target(self, trace):
        # 50% reach at t=1.5 => 1 + 0.5*4 broadcasts.
        assert trace.broadcasts_to(0.5) == pytest.approx(3.0)

    def test_broadcasts_to_infeasible(self, trace):
        with pytest.raises(InfeasibleConstraintError):
            trace.broadcasts_to(0.99)


class TestEnergyBudget:
    def test_budget_larger_than_total(self, trace):
        assert trace.reachability_within_energy(100) == pytest.approx(0.90)

    def test_budget_mid_phase(self, trace):
        # Budget 3 is exhausted halfway through phase 2 => reach 0.5.
        assert trace.reachability_within_energy(3.0) == pytest.approx(0.5)

    def test_budget_one(self, trace):
        # The source's broadcast alone: end of phase 1.
        assert trace.reachability_within_energy(1.0) == pytest.approx(0.25)

    def test_inverse_of_broadcasts_to(self, trace):
        for target in (0.3, 0.6, 0.85):
            budget = trace.broadcasts_to(target)
            assert trace.reachability_within_energy(budget) == pytest.approx(
                target, abs=1e-9
            )


class TestTruncated:
    def test_truncate(self, trace):
        t2 = trace.truncated(2)
        assert t2.phases == 2
        assert t2.informed_total == 30.0

    def test_truncate_beyond_is_noop(self, trace):
        assert trace.truncated(10).phases == 3

    def test_truncate_zero_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.truncated(0)
