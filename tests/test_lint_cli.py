"""CLI behaviour: exit codes, baseline round-trip, reporters."""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.lint.baseline import load_baseline, save_baseline
from repro.analysis.lint.cli import main
from repro.analysis.lint.core import check_paths

CLEAN = """
    import numpy as np

    def informed_count(rng: np.random.Generator) -> float:
        return float(rng.random())
"""

VIOLATION = """
    import numpy as np

    np.random.seed(42)
"""

SUPPRESSED = """
    import numpy as np

    np.random.seed(42)  # repro: allow(det-global-rng) — fixture exercises the legacy API
"""


@pytest.fixture
def repo(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> Path:
    """A throwaway repo layout; the CLI resolves paths against cwd."""
    (tmp_path / "src" / "repro" / "sim").mkdir(parents=True)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write(repo: Path, rel: str, body: str) -> None:
    (repo / rel).write_text(dedent(body), encoding="utf-8")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", CLEAN)
        assert main(["src"]) == 0
        assert "OK: no new findings" in capsys.readouterr().out

    def test_violation_exits_one(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "det-global-rng" in out
        assert "FAIL: 1 new finding" in out

    def test_suppressed_violation_exits_zero(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", SUPPRESSED)
        assert main(["src"]) == 0
        out = capsys.readouterr().out
        assert "1 suppressed finding(s)" in out
        assert "legacy API" in out

    def test_missing_path_exits_two(self, repo, capsys):
        assert main(["no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", CLEAN)
        assert main(["--rule", "no-such-rule", "src"]) == 2

    def test_rule_filter_restricts_checks(self, repo):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--rule", "det-wallclock", "src"]) == 0
        assert main(["--rule", "det-global-rng", "src"]) == 1

    def test_list_rules(self, repo, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-global-rng" in out and "err-silent-except" in out

    def test_unparseable_file_is_skipped_with_warning(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", CLEAN)
        write(repo, "src/repro/sim/broken.py", "def f(:\n")
        assert main(["src"]) == 0
        assert "unparseable" in capsys.readouterr().err


class TestBaseline:
    def test_write_then_check_round_trips(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--write-baseline", "src"]) == 0
        assert main(["src"]) == 0  # grandfathered, not failing
        out = capsys.readouterr().out
        assert "baselined finding(s)" in out

    def test_new_finding_on_top_of_baseline_fails(self, repo):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--write-baseline", "src"]) == 0
        write(
            repo,
            "src/repro/sim/other.py",
            """
            import time

            stamp = time.time()
            """,
        )
        assert main(["src"]) == 1

    def test_baseline_survives_line_drift(self, repo):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--write-baseline", "src"]) == 0
        write(repo, "src/repro/sim/mod.py", "x = 1\ny = 2\n" + dedent(VIOLATION))
        assert main(["src"]) == 0

    def test_no_baseline_flag_ignores_it(self, repo):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--write-baseline", "src"]) == 0
        assert main(["--no-baseline", "src"]) == 1

    def test_fixing_the_line_retires_the_fingerprint(self, repo):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--write-baseline", "src"]) == 0
        baseline = load_baseline("lint-baseline.json")
        assert len(baseline) == 1
        write(repo, "src/repro/sim/mod.py", CLEAN)
        assert main(["src"]) == 0

    def test_duplicate_snippets_get_distinct_fingerprints(self, repo):
        write(
            repo,
            "src/repro/sim/mod.py",
            """
            import numpy as np

            np.random.seed(42)
            np.random.seed(42)
            """,
        )
        findings, _ = check_paths(["src"], root=repo)
        saved = save_baseline(repo / "b.json", findings)
        assert len(saved) == 2

    def test_corrupt_baseline_version_exits_two(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", CLEAN)
        (repo / "lint-baseline.json").write_text('{"version": 99, "findings": []}')
        assert main(["src"]) == 2
        assert "unsupported baseline version" in capsys.readouterr().err


class TestJsonReport:
    def test_json_output_is_valid_and_complete(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--format", "json", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["new"] == 1
        (finding,) = doc["new"]
        assert finding["rule"] == "det-global-rng"
        assert finding["path"] == "src/repro/sim/mod.py"
        assert finding["fingerprint"]

    def test_json_clean_tree(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", CLEAN)
        assert main(["--format", "json", "src"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"new": 0, "baselined": 0, "suppressed": 0}
        assert doc["files_checked"] == 1


SEEDED = """
    import numpy as np

    def run_mod(n, seed=None):
        rng = np.random.default_rng(seed)
        return rng.random(n)
"""

UNSEEDED = """
    import numpy as np

    def run_mod(n):
        rng = np.random.default_rng()
        return rng.random(n)
"""


class TestSarifReport:
    def test_sarif_output_is_valid(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", VIOLATION)
        assert main(["--format", "sarif", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"det-global-rng", "flow-seed-provenance"} <= rule_ids
        (res,) = run["results"]
        assert res["ruleId"] == "det-global-rng"
        assert res["level"] == "error"
        assert res["partialFingerprints"]["reproLint/v1"]
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/sim/mod.py"
        assert loc["region"]["startColumn"] >= 1

    def test_sarif_suppressed_finding_carries_justification(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", SUPPRESSED)
        assert main(["--format", "sarif", "src"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (res,) = doc["runs"][0]["results"]
        assert res["level"] == "note"
        (sup,) = res["suppressions"]
        assert sup["kind"] == "inSource"
        assert "legacy API" in sup["justification"]

    def test_flow_finding_reported_in_sarif(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", UNSEEDED)
        assert main(["--format", "sarif", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {
            "flow-seed-provenance"
        }


class TestIncrementalCache:
    def test_warm_run_is_byte_identical_to_cold(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", SEEDED)
        assert main(["--format", "json", "src"]) == 0
        cold = capsys.readouterr().out
        cache = repo / ".repro-lint-cache"
        assert cache.is_dir() and list(cache.iterdir())
        assert main(["--format", "json", "src"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_no_cache_flag_skips_cache_dir(self, repo):
        write(repo, "src/repro/sim/mod.py", SEEDED)
        assert main(["--no-cache", "src"]) == 0
        assert not (repo / ".repro-lint-cache").exists()

    def test_cache_dir_override(self, repo):
        write(repo, "src/repro/sim/mod.py", SEEDED)
        assert main(["--cache-dir", str(repo / "alt-cache"), "src"]) == 0
        assert (repo / "alt-cache").is_dir()
        assert not (repo / ".repro-lint-cache").exists()

    def test_corrupt_cache_entry_is_tolerated(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", SEEDED)
        assert main(["--format", "json", "src"]) == 0
        cold = capsys.readouterr().out
        for entry in (repo / ".repro-lint-cache").iterdir():
            entry.write_text("{not json", encoding="utf-8")
        assert main(["--format", "json", "src"]) == 0
        assert capsys.readouterr().out == cold

    def test_stale_entry_refreshes_on_edit(self, repo, capsys):
        write(repo, "src/repro/sim/mod.py", SEEDED)
        assert main(["src"]) == 0
        capsys.readouterr()
        write(repo, "src/repro/sim/mod.py", UNSEEDED)
        assert main(["src"]) == 1
        assert "flow-seed-provenance" in capsys.readouterr().out


class TestWriteEffects:
    def test_write_effects_emits_manifest(self, repo, capsys):
        write(
            repo,
            "src/repro/sim/mod.py",
            """
            import time

            def run_mod(n, seed=None):
                return time.time() + n
            """,
        )
        assert main(["--write-effects", "src"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        doc = json.loads((repo / "effects-manifest.json").read_text())
        assert doc["repro.sim.mod.run_mod"] == ["time"]
