"""The repro-optimize console script: arguments, output, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.optimize.cli import main

FAST = [
    "--rho",
    "20",
    "--n-rings",
    "3",
    "--seed",
    "7",
    "--resolution",
    "0.05",
    "--restarts",
    "0",
    "--replications",
    "2",
    "--max-verify",
    "2",
]


class TestArguments:
    def test_objective_required(self, capsys):
        assert main(FAST + ["--max-latency", "5"]) == 2
        assert "--objective" in capsys.readouterr().err

    def test_resume_requires_store(self, capsys):
        argv = FAST + ["--objective", "reachability", "--resume"]
        assert main(argv) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_unknown_objective(self, capsys):
        argv = FAST + ["--objective", "throughput"]
        assert main(argv) == 2
        assert "unknown objective" in capsys.readouterr().err

    def test_bad_bound(self, capsys):
        argv = FAST + ["--objective", "latency", "--min-reach", "1.5"]
        assert main(argv) == 2
        assert "reachability" in capsys.readouterr().err

    def test_comma_separated_objectives(self, capsys):
        argv = FAST + ["--objective", "latency,energy", "--min-reach", "0.5", "--no-verify"]
        assert main(argv) == 0
        assert "minimize latency, energy" in capsys.readouterr().out


class TestReports:
    def test_human_report(self, capsys):
        argv = FAST + ["--objective", "reachability", "--max-latency", "5"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "frontier:" in out
        assert "best p:" in out
        assert "simulation" in out

    def test_no_verify_reports_surrogate(self, capsys):
        argv = FAST + [
            "--objective",
            "reachability",
            "--max-latency",
            "5",
            "--no-verify",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 simulator runs" in out
        assert "surrogate" in out

    def test_json_report(self, capsys):
        argv = FAST + [
            "--objective",
            "reachability",
            "--max-latency",
            "5",
            "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]["bounds"] == {"latency": 5.0}
        assert payload["query"]["objectives"] == ["reachability"]
        assert 0.0 < payload["best_p"] <= 1.0
        assert payload["sim_tasks"] > 0

    def test_manifest_dir(self, tmp_path, capsys):
        argv = FAST + [
            "--objective",
            "reachability",
            "--max-latency",
            "5",
            "--no-verify",
            "-o",
            str(tmp_path),
        ]
        assert main(argv) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["kind"] == "optimize"

    def test_empty_frontier_exits_one(self, capsys):
        argv = FAST + [
            "--objective",
            "energy",
            "--min-reach",
            "0.999",
            "--max-latency",
            "0.5",
            "--no-verify",
        ]
        assert main(argv) == 1
        assert "EMPTY" in capsys.readouterr().out


class TestStore:
    def test_warm_store_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = FAST + [
            "--objective",
            "reachability",
            "--max-latency",
            "5",
            "--store",
            store,
            "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second


def test_module_entry_point():
    import repro.optimize.__main__  # noqa: F401  (import side effects only)


@pytest.mark.parametrize("flag", ["--help"])
def test_help_exits_zero(flag, capsys):
    with pytest.raises(SystemExit) as exc:
        main([flag])
    assert exc.value.code == 0
    assert "repro-optimize" in capsys.readouterr().out
