"""Store compatibility of the replication-batched path.

Batching is an execution strategy, never part of a task's identity:
a replication's store key and persisted payload must be the same
whether it ran inside a :func:`repro.sim.engine.run_broadcast_batch`
block or through :func:`repro.sim.engine.run_broadcast`.  Caches
warmed by one path must serve the other verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.protocols.pbcast import ProbabilisticRelay
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_broadcast, run_broadcast_batch
from repro.sim.runner import replicate, sweep_grid
from repro.store import DiskStore
from repro.store.backend import pack_result
from repro.store.keys import task_key
from repro.utils.rng import as_seed_sequence


@pytest.fixture
def cfg():
    return SimulationConfig(analysis=AnalysisConfig(n_rings=3, rho=15))


def assert_runs_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b, strict=True):
        np.testing.assert_array_equal(x.new_informed_by_slot, y.new_informed_by_slot)
        np.testing.assert_array_equal(x.broadcasts_by_slot, y.broadcasts_by_slot)
        assert (x.n_field_nodes, x.collisions, x.total_tx, x.total_rx) == (
            y.n_field_nodes,
            y.collisions,
            y.total_tx,
            y.total_rx,
        )
        assert x.seed_entropy == y.seed_entropy
        np.testing.assert_array_equal(x.informed_mask, y.informed_mask)
        np.testing.assert_array_equal(
            x.trace.new_by_phase_ring, y.trace.new_by_phase_ring
        )


class TestKeyIdentity:
    def test_task_key_has_no_batch_component(self, cfg):
        """Each replication's key depends on (policy, config, seed,
        engine, alignment) only — the execution path cannot enter it."""
        policy = ProbabilisticRelay(0.5)
        children = as_seed_sequence(9).spawn(3)
        keys = [task_key(policy, cfg, c, "vector", "phase") for c in children]
        assert len(set(keys)) == 3
        # Recomputing from identical inputs gives identical keys; there
        # is no other input a batched runner could vary.
        again = [task_key(policy, cfg, c, "vector", "phase") for c in children]
        assert keys == again

    def test_batched_and_per_run_store_same_keys(self, cfg, tmp_path):
        policy = ProbabilisticRelay(0.5)
        replicate(policy, cfg, 3, seed=9, store=tmp_path / "a", block_size=3)
        replicate(policy, cfg, 3, seed=9, store=tmp_path / "b", block_size=0)
        keys_a = sorted(DiskStore(tmp_path / "a").keys())
        keys_b = sorted(DiskStore(tmp_path / "b").keys())
        assert keys_a == keys_b
        assert len(keys_a) == 3


class TestPayloadIdentity:
    def test_packed_payloads_identical(self, cfg):
        """The persisted byte content (sans telemetry, which is never
        stored) is equal for both execution paths."""
        policy = ProbabilisticRelay(0.4)
        seeds = as_seed_sequence(21).spawn(4)
        batched = run_broadcast_batch(policy, cfg, seeds)
        for r, seed in enumerate(seeds):
            single = run_broadcast(policy, cfg, seed)
            assert pack_result(batched[r]) == pack_result(single)


class TestCrossPathCache:
    def test_cold_batched_serves_warm_per_run(self, cfg, tmp_path):
        policy = ProbabilisticRelay(0.5)
        cold = replicate(policy, cfg, 4, seed=9, store=tmp_path / "s", block_size=4)
        warm = replicate(policy, cfg, 4, seed=9, store=tmp_path / "s", block_size=0)
        assert_runs_identical(cold, warm)
        # The warm pass was all hits: telemetry is never persisted, so
        # every result coming back from disk carries metrics=None.
        assert all(r.metrics is None for r in warm)

    def test_cold_per_run_serves_warm_batched(self, cfg, tmp_path):
        policy = ProbabilisticRelay(0.5)
        cold = replicate(policy, cfg, 4, seed=9, store=tmp_path / "s", block_size=0)
        warm = replicate(policy, cfg, 4, seed=9, store=tmp_path / "s", block_size=4)
        assert_runs_identical(cold, warm)
        assert all(r.metrics is None for r in warm)

    def test_partial_warm_blocks_reform_over_misses(self, cfg, tmp_path):
        """Warm a prefix per-run, then run the full set batched: the
        scheduler serves the hits from disk and re-forms blocks over
        the misses, with results identical to storeless execution."""
        policy = ProbabilisticRelay(0.5)
        replicate(policy, cfg, 2, seed=9, store=tmp_path / "s", block_size=0)
        full = replicate(policy, cfg, 6, seed=9, store=tmp_path / "s", block_size=3)
        off = replicate(policy, cfg, 6, seed=9, block_size=0)
        assert_runs_identical(full, off)
        assert all(r.metrics is None for r in full[:2])

    def test_sweep_grid_cross_path(self, cfg, tmp_path):
        cold = sweep_grid(
            cfg,
            [15.0],
            [0.4, 0.8],
            3,
            seed=5,
            store=tmp_path / "s",
            block_size=3,
        )
        warm = sweep_grid(
            cfg,
            [15.0],
            [0.4, 0.8],
            3,
            seed=5,
            store=tmp_path / "s",
            block_size=0,
        )
        assert cold.keys() == warm.keys()
        for point in cold:
            assert_runs_identical(cold[point], warm[point])
            assert all(r.metrics is None for r in warm[point])
