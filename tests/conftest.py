"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.experiments.params import ExperimentScale
from repro.network.deployment import DiskDeployment
from repro.sim.config import SimulationConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(123456789)


@pytest.fixture
def small_config() -> AnalysisConfig:
    """A small, fast analytical configuration."""
    return AnalysisConfig(n_rings=3, rho=20.0, slots=3, quad_nodes=32)


@pytest.fixture
def paper_config() -> AnalysisConfig:
    """The paper's configuration at a mid-range density."""
    return AnalysisConfig(n_rings=5, rho=60.0, slots=3)


@pytest.fixture
def small_sim_config(small_config) -> SimulationConfig:
    """A small simulation scenario (couple hundred nodes)."""
    return SimulationConfig(analysis=small_config)


@pytest.fixture
def small_deployment(rng) -> DiskDeployment:
    """One sampled deployment shared within a test."""
    return DiskDeployment.sample(rho=20.0, n_rings=3, rng=rng)


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """A minimal experiment scale for figure-generation tests."""
    return ExperimentScale(
        name="tiny",
        rho_grid=(20, 60),
        analysis_p_step=0.1,
        sim_p_step=0.25,
        replications=3,
        seed=7,
        workers=1,
    )
