"""Cost model and energy ledger accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.costs import CostModel, EnergyLedger


class TestCostModel:
    def test_defaults(self):
        cm = CostModel()
        assert cm.time == 1.0 and cm.energy == 1.0

    def test_presets(self):
        assert CostModel.cfm(time=2.0).time == 2.0
        assert CostModel.cam(energy=0.5).energy == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(time=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(energy=-1.0)


class TestEnergyLedger:
    def test_counts(self):
        led = EnergyLedger(5)
        led.record_tx([0, 2])
        led.record_tx([2])
        led.record_rx([1, 3, 4])
        assert led.total_tx == 3
        assert led.total_rx == 3
        np.testing.assert_array_equal(led.tx_counts, [1, 0, 2, 0, 0])
        np.testing.assert_array_equal(led.rx_counts, [0, 1, 0, 1, 1])

    def test_views_read_only(self):
        led = EnergyLedger(2)
        with pytest.raises(ValueError):
            led.tx_counts[0] = 5

    def test_energy_conversion(self):
        led = EnergyLedger(3, CostModel(energy=2.0))
        led.record_tx([0])
        led.record_rx([1, 2])
        np.testing.assert_allclose(led.node_energy(), [2.0, 2.0, 2.0])
        assert led.total_energy() == 6.0

    def test_recost_without_rerun(self):
        led = EnergyLedger(2)
        led.record_tx([0])
        assert led.total_energy(CostModel(energy=5.0)) == 5.0
        assert led.total_energy() == 1.0  # original cost model untouched

    def test_merge(self):
        a, b = EnergyLedger(3), EnergyLedger(3)
        a.record_tx([0])
        b.record_tx([0])
        b.record_rx([2])
        merged = a.merge(b)
        assert merged.total_tx == 2 and merged.total_rx == 1

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            EnergyLedger(2).merge(EnergyLedger(3))

    def test_empty_arrays_ok(self):
        led = EnergyLedger(2)
        led.record_tx(np.array([], dtype=int))
        assert led.total_tx == 0
