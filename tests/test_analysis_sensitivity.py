"""Tuning sensitivity: robustness bands and density-mismatch penalties."""

import numpy as np
import pytest

from repro.analysis.config import AnalysisConfig
from repro.errors import ConfigurationError
from repro.analysis.sensitivity import (
    density_mismatch_penalty,
    robust_probability_band,
)

GRID = np.arange(0.02, 1.001, 0.02)


@pytest.fixture
def cfg():
    return AnalysisConfig(n_rings=4, rho=60, quad_nodes=48)


class TestRobustnessBand:
    def test_band_contains_optimum(self, cfg):
        band = robust_probability_band(
            cfg, "reachability_at_latency", 5, p_grid=GRID
        )
        assert band.p_low <= band.p_opt <= band.p_high

    def test_band_widens_with_tolerance(self, cfg):
        tight = robust_probability_band(
            cfg, "reachability_at_latency", 5, tolerance=0.02, p_grid=GRID
        )
        loose = robust_probability_band(
            cfg, "reachability_at_latency", 5, tolerance=0.2, p_grid=GRID
        )
        assert loose.width >= tight.width

    def test_band_values_actually_within_tolerance(self, cfg):
        from repro.analysis.metrics import reachability_at_latency

        band = robust_probability_band(
            cfg, "reachability_at_latency", 5, tolerance=0.05, p_grid=GRID
        )
        for p in (band.p_low, band.p_high):
            v = reachability_at_latency(cfg, p, 5)
            assert v >= band.value_opt * 0.95 - 1e-9

    def test_min_metric_band(self, cfg):
        band = robust_probability_band(
            cfg, "energy_at_reachability", 0.6, tolerance=0.1, p_grid=GRID
        )
        assert band.p_low <= band.p_opt <= band.p_high

    def test_relative_width_positive(self, cfg):
        band = robust_probability_band(
            cfg, "reachability_at_latency", 5, p_grid=GRID
        )
        assert band.relative_width >= 0.0

    def test_invalid_tolerance(self, cfg):
        with pytest.raises(ConfigurationError):
            robust_probability_band(
                cfg, "reachability_at_latency", 5, tolerance=1.5
            )


class TestDensityMismatch:
    def test_correct_estimate_is_lossless(self, cfg):
        res = density_mismatch_penalty(cfg, cfg.rho, p_grid=GRID)
        assert res.efficiency == pytest.approx(1.0, abs=1e-9)

    def test_overestimating_density_hurts_more(self, cfg):
        """Assume rho=180 when it's 60 (p too small: the wave misses the
        5-phase deadline) vs assume rho=20 (p too big: shallow right
        flank of the bell curve) — under the latency constraint the
        overestimate is the dangerous direction."""
        under = density_mismatch_penalty(cfg, 20, p_grid=GRID)
        over = density_mismatch_penalty(cfg, 180, p_grid=GRID)
        assert under.efficiency > over.efficiency
        assert under.efficiency > 0.85  # 3x underestimate stays benign

    def test_mismatch_always_loses_something(self, cfg):
        under = density_mismatch_penalty(cfg, 20, p_grid=GRID)
        over = density_mismatch_penalty(cfg, 180, p_grid=GRID)
        assert under.efficiency < 1.0
        assert over.efficiency < 1.0

    def test_p_used_matches_assumed_density_optimum(self, cfg):
        from repro.analysis.optimizer import optimal_probability

        res = density_mismatch_penalty(cfg, 30, p_grid=GRID)
        expected = optimal_probability(
            cfg.with_rho(30), "reachability_at_latency", 5, p_grid=GRID
        )
        assert res.p_used == expected.p

    def test_efficiency_bounded(self, cfg):
        for rho_assumed in (20, 60, 140):
            res = density_mismatch_penalty(cfg, rho_assumed, p_grid=GRID)
            assert 0.0 <= res.efficiency <= 1.0 + 1e-9

    def test_min_metric_mismatch(self, cfg):
        res = density_mismatch_penalty(
            cfg, 30, metric="energy_at_reachability", constraint=0.6, p_grid=GRID
        )
        assert 0.0 <= res.efficiency <= 1.0 + 1e-9
